"""Unit tests for the span tracer and its Chrome trace-event export."""

import json
import threading

import pytest

from repro.obs import NULL_TRACER, Span, Tracer, validate_chrome_trace


class TestRecording:
    def test_span_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("compare", algo="hash") as span:
            span.set(units=3)
        (span,) = tracer.spans
        assert span.name == "compare"
        assert span.end >= span.start
        assert span.duration == span.end - span.start
        assert span.attrs == {"algo": "hash", "units": 3}

    def test_nesting_builds_slash_paths(self):
        tracer = Tracer()
        with tracer.span("execute"):
            with tracer.span("align"):
                pass
            with tracer.span("compare"):
                with tracer.span("match"):
                    pass
        paths = [span.path for span in tracer.spans]
        assert paths == [
            "execute",
            "execute/align",
            "execute/compare",
            "execute/compare/match",
        ]

    def test_exception_still_publishes_and_pops(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("boom"):
                    raise ValueError("x")
        with tracer.span("after"):
            pass
        paths = {span.path for span in tracer.spans}
        assert paths == {"outer", "outer/boom", "after"}

    def test_add_span_inserts_raw_interval(self):
        tracer = Tracer()
        tracer.add_span("xfer", 1.0, 2.5, lane="net:recv n0", cells=10)
        (span,) = tracer.spans
        assert (span.start, span.end) == (1.0, 2.5)
        assert span.lane == "net:recv n0"
        assert span.attrs == {"cells": 10}

    def test_spans_sorted_by_start(self):
        tracer = Tracer()
        tracer.add_span("b", 2.0, 3.0)
        tracer.add_span("a", 1.0, 1.5)
        assert [span.name for span in tracer.spans] == ["a", "b"]

    def test_clear_and_len(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert len(tracer) == 1
        tracer.clear()
        assert len(tracer) == 0 and tracer.spans == []


class TestDisabled:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            span.set(a=1)
        tracer.add_span("y", 0.0, 1.0)
        assert len(tracer) == 0

    def test_disabled_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")
        assert tracer.span("a") is NULL_TRACER.span("c")


class TestWorkers:
    def test_worker_tracer_merges_onto_parent_timeline(self):
        parent = Tracer()
        worker = parent.worker("worker:n3")
        assert worker.epoch == parent.epoch
        with worker.span("batch n3", node=3):
            pass
        parent.extend(worker.spans)
        (span,) = parent.spans
        assert span.lane == "worker:n3"
        assert span.attrs == {"node": 3}

    def test_extend_rebased_shifts_lazily(self):
        tracer = Tracer()
        shared = [Span("xfer", 0.5, 1.0, "xfer", "net:recv n0")]
        tracer.extend_rebased(shared, offset=10.0)
        assert len(tracer) == 1
        (span,) = tracer.spans
        assert (span.start, span.end) == (10.5, 11.0)
        # The shared originals are untouched (they may be re-exported
        # onto other timelines).
        assert (shared[0].start, shared[0].end) == (0.5, 1.0)

    def test_threaded_recording_keeps_per_thread_nesting(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def work(tid: int) -> None:
            barrier.wait(timeout=10)
            for _ in range(100):
                with tracer.span(f"outer{tid}"):
                    with tracer.span("inner"):
                        pass

        threads = [
            threading.Thread(target=work, args=(tid,)) for tid in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        paths = {span.path for span in tracer.spans}
        expected = set()
        for tid in range(4):
            expected |= {f"outer{tid}", f"outer{tid}/inner"}
        assert paths == expected
        assert len(tracer) == 4 * 100 * 2


class TestChromeExport:
    def golden(self):
        """A deterministic two-lane trace used by the export tests."""
        tracer = Tracer()
        tracer.add_span("plan", 0.0, 0.001, lane="main")
        tracer.add_span("xfer n0->n1", 0.001, 0.002, lane="net:recv n1", cells=7)
        return tracer

    def test_chrome_trace_structure(self):
        payload = self.golden().chrome_trace()
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in metadata} == {"main", "net:recv n1"}
        assert len(complete) == 2
        # Lane names map to integer tids shared with the metadata events.
        tids = {e["args"]["name"]: e["tid"] for e in metadata}
        plan, xfer = complete
        assert plan["tid"] == tids["main"]
        assert xfer["tid"] == tids["net:recv n1"]
        # Timestamps are microseconds.
        assert plan["ts"] == 0.0 and plan["dur"] == pytest.approx(1000.0)
        assert xfer["ts"] == pytest.approx(1000.0)
        assert xfer["args"]["cells"] == 7

    def test_write_chrome_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        n = self.golden().write_chrome(path)
        assert n == 2
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_jsonl_lines(self):
        lines = [json.loads(line) for line in self.golden().jsonl_lines()]
        assert [line["name"] for line in lines] == ["plan", "xfer n0->n1"]
        assert lines[1]["lane"] == "net:recv n1"
        assert lines[1]["dur"] == pytest.approx(0.001)


class TestValidate:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]

    def test_rejects_bad_event_fields(self):
        payload = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": "a", "ts": 0, "dur": 1},
                {"name": "", "ph": "X", "pid": 1, "tid": 0, "ts": -1, "dur": 1},
                {"name": "y", "ph": "Q", "pid": 1, "tid": 0},
            ]
        }
        errors = validate_chrome_trace(payload)
        assert any("tid must be an integer" in e for e in errors)
        assert any("missing string name" in e for e in errors)
        assert any("ts must be a number >= 0" in e for e in errors)
        assert any("unsupported phase" in e for e in errors)

    def test_rejects_metadata_only_trace(self):
        payload = {
            "traceEvents": [
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
                 "args": {"name": "main"}},
            ]
        }
        assert validate_chrome_trace(payload) == [
            "trace contains no complete (ph=X) events"
        ]
