"""Unit tests for the nestable phase profiler."""

import time

from repro.obs import DISABLED_PROFILER, PhaseProfiler


class TestPaths:
    def test_flat_phase_recorded(self):
        profiler = PhaseProfiler()
        with profiler.phase("stats"):
            pass
        assert list(profiler.totals) == ["stats"]
        assert profiler.counts["stats"] == 1
        assert profiler.totals["stats"] >= 0.0

    def test_nested_phases_join_with_slash(self):
        profiler = PhaseProfiler()
        with profiler.phase("prepare"):
            with profiler.phase("stats"):
                pass
            with profiler.phase("alignment"):
                with profiler.phase("schedule"):
                    pass
        assert sorted(profiler.totals) == [
            "prepare",
            "prepare/alignment",
            "prepare/alignment/schedule",
            "prepare/stats",
        ]

    def test_repeated_phases_accumulate(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("stats"):
                pass
        assert profiler.counts["stats"] == 3

    def test_outer_phase_covers_inner(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                time.sleep(0.002)
        assert profiler.totals["outer"] >= profiler.totals["outer/inner"]

    def test_exception_still_records_and_pops(self):
        profiler = PhaseProfiler()
        try:
            with profiler.phase("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert profiler.counts["boom"] == 1
        with profiler.phase("after"):
            pass
        assert "after" in profiler.totals  # stack popped, not "boom/after"


class TestSnapshots:
    def test_since_returns_positive_deltas_only(self):
        profiler = PhaseProfiler()
        with profiler.phase("warm"):
            pass
        snapshot = profiler.snapshot()
        with profiler.phase("fresh"):
            pass
        delta = profiler.since(snapshot)
        assert "fresh" in delta
        assert "warm" not in delta

    def test_reset_clears(self):
        profiler = PhaseProfiler()
        with profiler.phase("x"):
            pass
        profiler.reset()
        assert profiler.totals == {}
        assert profiler.counts == {}

    def test_describe_mentions_each_path(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            with profiler.phase("b"):
                pass
        text = profiler.describe()
        assert "a/b" in text
        assert PhaseProfiler().describe() == "(no phases recorded)"


class TestDisabled:
    def test_disabled_records_nothing(self):
        profiler = PhaseProfiler(enabled=False)
        with profiler.phase("stats"):
            pass
        assert profiler.totals == {}

    def test_disabled_returns_shared_noop(self):
        """The disabled path allocates nothing: every call hands back the
        same no-op context manager (the <1%-overhead guarantee)."""
        profiler = PhaseProfiler(enabled=False)
        assert profiler.phase("a") is profiler.phase("b")
        assert profiler.phase("a") is DISABLED_PROFILER.phase("c")

    def test_disabled_overhead_is_negligible(self):
        """Entering a disabled phase must cost well under a microsecond —
        threaded through the executor it adds <1% to any real query. The
        bound is deliberately loose (20x the typical cost) to stay robust
        on noisy shared CI machines."""
        profiler = PhaseProfiler(enabled=False)
        n = 100_000
        started = time.perf_counter()
        for _ in range(n):
            with profiler.phase("hot"):
                pass
        per_call = (time.perf_counter() - started) / n
        assert per_call < 5e-6


class TestThreadSafety:
    def test_nested_phases_from_four_threads(self):
        """Regression: the profiler used to share one phase stack across
        threads, so concurrent nesting interleaved into garbage paths
        (e.g. "a/b" attributed to another thread's phase) and popped the
        wrong frames. Each thread must see only its own nesting."""
        import threading

        profiler = PhaseProfiler()
        barrier = threading.Barrier(4)
        errors: list[BaseException] = []

        def work(tid: int) -> None:
            try:
                barrier.wait(timeout=10)
                for _ in range(200):
                    with profiler.phase(f"outer{tid}"):
                        with profiler.phase("inner"):
                            pass
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(tid,)) for tid in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        expected = set()
        for tid in range(4):
            expected |= {f"outer{tid}", f"outer{tid}/inner"}
        assert set(profiler.totals) == expected
        for tid in range(4):
            assert profiler.counts[f"outer{tid}"] == 200
            assert profiler.counts[f"outer{tid}/inner"] == 200
