"""Extended MILP solver tests: general integers, equalities, bounds."""

import numpy as np
import pytest
from scipy import sparse

from repro.solver import BranchAndBoundSolver, MilpProblem, SolveStatus


class TestGeneralIntegers:
    def test_bounded_integer_variable(self):
        """min x s.t. x >= 2.3, x integer, 0 <= x <= 10 -> x = 3."""
        problem = MilpProblem(
            c=np.array([1.0]),
            a_ub=sparse.csr_matrix(np.array([[-1.0]])),
            b_ub=np.array([-2.3]),
            lb=np.zeros(1),
            ub=np.array([10.0]),
            integrality=np.array([0]),
        )
        result = BranchAndBoundSolver(time_budget_s=2.0).solve(problem)
        assert result.status == SolveStatus.OPTIMAL
        assert result.x[0] == pytest.approx(3.0)

    def test_integer_knapsack_with_repeats(self):
        """max 3x + 5y s.t. 2x + 4y <= 11, x,y >= 0 integer."""
        problem = MilpProblem(
            c=np.array([-3.0, -5.0]),
            a_ub=sparse.csr_matrix(np.array([[2.0, 4.0]])),
            b_ub=np.array([11.0]),
            lb=np.zeros(2),
            ub=np.array([100.0, 100.0]),
            integrality=np.array([0, 1]),
        )
        result = BranchAndBoundSolver(time_budget_s=5.0).solve(problem)
        assert result.status == SolveStatus.OPTIMAL
        # Best integer point: x=5, y=0 (15) vs x=1,y=2 (13) vs x=3,y=1 (14).
        assert -result.objective == pytest.approx(15.0)


class TestEqualityConstraints:
    def test_assignment_with_capacity(self):
        """3 items to 2 slots, slot 0 takes at most 1 item."""
        n, k = 3, 2
        c = np.array([1.0, 5.0, 1.0, 5.0, 1.0, 5.0])  # prefer slot 0
        rows = np.repeat(np.arange(n), k)
        cols = np.arange(n * k)
        a_eq = sparse.csr_matrix(
            (np.ones(n * k), (rows, cols)), shape=(n, n * k)
        )
        capacity = np.zeros((1, n * k))
        capacity[0, 0::2] = 1.0  # slot-0 variables
        problem = MilpProblem(
            c=c,
            a_eq=a_eq,
            b_eq=np.ones(n),
            a_ub=sparse.csr_matrix(capacity),
            b_ub=np.array([1.0]),
            lb=np.zeros(n * k),
            ub=np.ones(n * k),
            integrality=np.arange(n * k),
        )
        result = BranchAndBoundSolver(time_budget_s=5.0).solve(problem)
        assert result.status == SolveStatus.OPTIMAL
        assignment = result.x.reshape(n, k)
        assert assignment.sum(axis=1) == pytest.approx(np.ones(n))
        assert assignment[:, 0].sum() <= 1.0 + 1e-6
        assert result.objective == pytest.approx(1.0 + 5.0 + 5.0)


class TestBounds:
    def test_lower_bound_tracks_incumbent(self):
        gen = np.random.default_rng(1)
        values = gen.integers(1, 50, 25)
        weights = gen.integers(1, 25, 25)
        problem = MilpProblem(
            c=-values.astype(np.float64),
            a_ub=sparse.csr_matrix(weights.astype(np.float64).reshape(1, -1)),
            b_ub=np.array([float(weights.sum() // 4)]),
            lb=np.zeros(25),
            ub=np.ones(25),
            integrality=np.arange(25),
        )
        result = BranchAndBoundSolver(time_budget_s=3.0).solve(problem)
        assert result.x is not None
        assert result.lower_bound <= result.objective + 1e-6
        assert 0.0 <= result.gap < np.inf

    def test_nodes_explored_counted(self):
        problem = MilpProblem(
            c=np.array([-1.0, -1.0]),
            a_ub=sparse.csr_matrix(np.array([[1.0, 2.0], [2.0, 1.0]])),
            b_ub=np.array([2.5, 2.5]),
            lb=np.zeros(2),
            ub=np.ones(2),
            integrality=np.arange(2),
        )
        result = BranchAndBoundSolver(time_budget_s=2.0).solve(problem)
        assert result.nodes_explored >= 1
        assert result.status == SolveStatus.OPTIMAL
