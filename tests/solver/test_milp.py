"""Unit tests for the branch-and-bound MILP solver substrate."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import SolverError
from repro.solver import BranchAndBoundSolver, MilpProblem, SolveStatus


def knapsack(values, weights, capacity):
    """max Σ v·x s.t. Σ w·x ≤ c, x binary — as a minimisation problem."""
    n = len(values)
    return MilpProblem(
        c=-np.asarray(values, dtype=np.float64),
        a_ub=sparse.csr_matrix(np.asarray(weights, dtype=np.float64).reshape(1, n)),
        b_ub=np.array([capacity], dtype=np.float64),
        lb=np.zeros(n),
        ub=np.ones(n),
        integrality=np.arange(n),
    )


class TestLpOnly:
    def test_pure_lp(self):
        problem = MilpProblem(
            c=np.array([1.0, 2.0]),
            a_ub=sparse.csr_matrix(np.array([[-1.0, -1.0]])),
            b_ub=np.array([-4.0]),
        )
        result = BranchAndBoundSolver(time_budget_s=2.0).solve(problem)
        assert result.status == SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(4.0)


class TestKnapsack:
    def test_small_optimal(self):
        # values (6,5,4), weights (4,3,2), capacity 5 -> take items 2,3 (9).
        problem = knapsack([6, 5, 4], [4, 3, 2], 5)
        result = BranchAndBoundSolver(time_budget_s=5.0).solve(problem)
        assert result.status == SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(-9.0)
        np.testing.assert_allclose(np.round(result.x), [0, 1, 1])

    def test_medium_random_matches_dp(self, rng):
        values = rng.integers(1, 30, 14)
        weights = rng.integers(1, 20, 14)
        capacity = int(weights.sum() // 3)
        problem = knapsack(values, weights, capacity)
        result = BranchAndBoundSolver(time_budget_s=20.0).solve(problem)
        assert result.status == SolveStatus.OPTIMAL

        # Exact DP reference.
        best = np.zeros(capacity + 1, dtype=np.int64)
        for value, weight in zip(values, weights):
            for cap in range(capacity, weight - 1, -1):
                best[cap] = max(best[cap], best[cap - weight] + value)
        assert -result.objective == pytest.approx(best[capacity])


class TestInfeasible:
    def test_detected(self):
        problem = MilpProblem(
            c=np.array([1.0]),
            a_ub=sparse.csr_matrix(np.array([[1.0], [-1.0]])),
            b_ub=np.array([1.0, -2.0]),  # x <= 1 and x >= 2
            integrality=np.array([0]),
        )
        result = BranchAndBoundSolver(time_budget_s=2.0).solve(problem)
        assert result.status in (SolveStatus.INFEASIBLE, SolveStatus.NO_SOLUTION)
        assert result.x is None


class TestAnytime:
    def test_budget_respected(self):
        gen = np.random.default_rng(0)
        problem = knapsack(
            gen.integers(1, 100, 60), gen.integers(1, 50, 60), 300
        )
        solver = BranchAndBoundSolver(time_budget_s=0.5)
        result = solver.solve(problem)
        assert result.elapsed_s < 5.0
        if result.x is not None:
            assert problem.check_feasible(result.x)
            assert result.lower_bound <= result.objective + 1e-6

    def test_rounding_hook_produces_incumbent(self):
        # Assignment-like problem where rounding is trivially feasible.
        n, k = 6, 3
        c = np.arange(n * k, dtype=np.float64)
        rows = np.repeat(np.arange(n), k)
        cols = np.arange(n * k)
        a_eq = sparse.csr_matrix((np.ones(n * k), (rows, cols)), shape=(n, n * k))
        problem = MilpProblem(
            c=c,
            a_eq=a_eq,
            b_eq=np.ones(n),
            lb=np.zeros(n * k),
            ub=np.ones(n * k),
            integrality=np.arange(n * k),
        )

        def round_hook(x):
            matrix = x.reshape(n, k)
            rounded = np.zeros_like(matrix)
            rounded[np.arange(n), np.argmax(matrix, axis=1)] = 1.0
            return rounded.ravel()

        solver = BranchAndBoundSolver(time_budget_s=5.0, rounding_hook=round_hook)
        result = solver.solve(problem)
        assert result.status == SolveStatus.OPTIMAL
        assert problem.check_feasible(result.x)

    def test_invalid_budget(self):
        with pytest.raises(SolverError):
            BranchAndBoundSolver(time_budget_s=0.0)


class TestFeasibilityCheck:
    def test_check_feasible(self):
        problem = knapsack([1, 1], [1, 1], 1)
        assert problem.check_feasible(np.array([1.0, 0.0]))
        assert not problem.check_feasible(np.array([1.0, 1.0]))
        assert not problem.check_feasible(np.array([0.5, 0.0]))
        assert not problem.check_feasible(np.array([0.5]))
