"""Unit tests for the AQL parser."""

import pytest

from repro.errors import ParseError
from repro.query.aql import FilterQuery, JoinQuery, parse_aql


class TestJoinQueries:
    def test_join_on(self):
        query = parse_aql("SELECT * FROM A JOIN B ON A.i = B.j")
        assert isinstance(query, JoinQuery)
        assert (query.left, query.right) == ("A", "B")
        assert query.select_star
        assert str(query.predicates[0]) == "A.i = B.j"

    def test_comma_from_with_where(self):
        query = parse_aql("SELECT * FROM A, B WHERE A.v = B.w")
        assert isinstance(query, JoinQuery)
        assert len(query.predicates) == 1

    def test_conjunctive_predicates(self):
        query = parse_aql(
            "SELECT A.v1 - B.v1 FROM A, B "
            "WHERE A.i = B.i AND A.j = B.j"
        )
        assert len(query.predicates) == 2

    def test_into_schema_literal(self):
        query = parse_aql(
            "SELECT i, j INTO T<i:int64, j:int64>[] FROM A, B WHERE A.v = B.w"
        )
        assert query.into_schema is not None
        assert query.into_schema.is_dimensionless()
        assert query.output_name == "T"

    def test_into_plain_name(self):
        query = parse_aql("SELECT * INTO Result FROM A, B WHERE A.v = B.w")
        assert query.into_name == "Result"
        assert query.output_name == "Result"

    def test_into_schema_with_dims(self):
        query = parse_aql(
            "SELECT * INTO C<i:int64, j:int64>[v=1,128,4] "
            "FROM A, B WHERE A.v = B.w"
        )
        assert query.into_schema.dim_names == ("v",)

    def test_select_aliases(self):
        query = parse_aql(
            "SELECT A.v1 - B.v1 AS d1, A.v2 AS copy FROM A, B WHERE A.i = B.i"
        )
        assert [item.output_name for item in query.select] == ["d1", "copy"]

    def test_percent_select_star(self):
        # The paper writes `SELECT %` in the Figure 5 query.
        query = parse_aql("SELECT % FROM A, B WHERE A.v = B.w")
        assert query.select_star

    def test_paper_ndvi_query(self):
        query = parse_aql(
            "SELECT (Band2.r - Band1.r) / (Band2.r + Band1.r) "
            "FROM Band1, Band2 "
            "WHERE Band1.time = Band2.time AND Band1.lon = Band2.lon "
            "AND Band1.lat = Band2.lat;"
        )
        assert len(query.predicates) == 3
        assert query.select[0].output_name == "expr"

    def test_default_output_name(self):
        query = parse_aql("SELECT * FROM A, B WHERE A.v = B.w")
        assert query.output_name == "A_join_B"

    def test_missing_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT * FROM A JOIN B")

    def test_non_field_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT * FROM A, B WHERE A.v = 5")

    def test_disjunction_rejected(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT * FROM A, B WHERE A.v = B.w OR A.i = B.j")

    def test_three_arrays_become_multijoin(self):
        from repro.query.aql import MultiJoinQuery

        query = parse_aql(
            "SELECT * FROM A, B, C WHERE A.v = B.w AND B.x = C.y"
        )
        assert isinstance(query, MultiJoinQuery)
        assert query.arrays == ["A", "B", "C"]
        assert len(query.predicates) == 2

    def test_multijoin_requires_qualified_predicates(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT * FROM A, B, C WHERE v = B.w AND B.x = C.y")

    def test_multijoin_predicate_must_name_from_arrays(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT * FROM A, B, C WHERE A.v = D.w")

    def test_repeated_array_rejected(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT * FROM A, A WHERE A.v = A.w")


class TestFilterQueries:
    def test_paper_filter(self):
        query = parse_aql("SELECT * FROM A WHERE v1 > 5")
        assert isinstance(query, FilterQuery)
        assert query.array == "A"
        assert query.predicate.render() == "(v1 > 5)"

    def test_scan_only(self):
        query = parse_aql("SELECT * FROM A")
        assert isinstance(query, FilterQuery)
        assert query.predicate is None

    def test_projection(self):
        query = parse_aql("SELECT v1, v2 FROM A WHERE v1 >= 2 AND v2 < 9")
        assert len(query.select) == 2


class TestMalformed:
    @pytest.mark.parametrize(
        "text",
        [
            "FROM A SELECT *",
            "SELECT FROM A",
            "SELECT *",
            "SELECT * FROM 1A",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(ParseError):
            parse_aql(text)
