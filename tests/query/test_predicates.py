"""Unit tests for the predicate taxonomy (Section 2.2)."""

import pytest

from repro.adm.parser import parse_schema
from repro.errors import SchemaError
from repro.query.predicates import (
    FieldRef,
    JoinPredicate,
    PredicateKind,
    classify_predicates,
    dominant_kind,
)

ALPHA = parse_schema("A<v:int64>[i=1,8,2, j=1,8,2]")
BETA = parse_schema("B<w:int64>[i=1,8,2, j=1,8,2]")


def pred(left, right):
    return JoinPredicate(FieldRef.parse(left), FieldRef.parse(right))


class TestFieldRef:
    def test_parse_qualified(self):
        ref = FieldRef.parse("A.v")
        assert (ref.array, ref.field) == ("A", "v")

    def test_parse_bare(self):
        ref = FieldRef.parse("v")
        assert ref.array is None

    def test_parse_malformed(self):
        with pytest.raises(SchemaError):
            FieldRef.parse("a.b.c")

    def test_resolve_kind(self):
        assert FieldRef.parse("A.i").resolve_kind(ALPHA) == "dimension"
        assert FieldRef.parse("A.v").resolve_kind(ALPHA) == "attribute"


class TestKinds:
    def test_dd(self):
        assert pred("A.i", "B.i").kind(ALPHA, BETA) == PredicateKind.DIM_DIM

    def test_aa(self):
        assert pred("A.v", "B.w").kind(ALPHA, BETA) == PredicateKind.ATTR_ATTR

    def test_ad(self):
        assert pred("A.v", "B.i").kind(ALPHA, BETA) == PredicateKind.ATTR_DIM

    def test_da(self):
        assert pred("A.i", "B.w").kind(ALPHA, BETA) == PredicateKind.DIM_ATTR

    def test_unknown_field(self):
        with pytest.raises(SchemaError):
            pred("A.missing", "B.w").kind(ALPHA, BETA)


class TestClassification:
    def test_classify_all(self):
        kinds = classify_predicates(
            [pred("A.i", "B.i"), pred("A.v", "B.w")], ALPHA, BETA
        )
        assert set(kinds.values()) == {
            PredicateKind.DIM_DIM, PredicateKind.ATTR_ATTR,
        }

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            classify_predicates([], ALPHA, BETA)

    def test_dominant_dd_only_when_pure(self):
        pure = classify_predicates(
            [pred("A.i", "B.i"), pred("A.j", "B.j")], ALPHA, BETA
        )
        assert dominant_kind(pure) == PredicateKind.DIM_DIM

    def test_dominant_aa_wins(self):
        mixed = classify_predicates(
            [pred("A.i", "B.i"), pred("A.v", "B.w")], ALPHA, BETA
        )
        assert dominant_kind(mixed) == PredicateKind.ATTR_ATTR

    def test_dominant_ad(self):
        mixed = classify_predicates(
            [pred("A.i", "B.i"), pred("A.v", "B.i")], ALPHA, BETA
        )
        assert dominant_kind(mixed) == PredicateKind.ATTR_DIM
