"""Unit tests for AFL operator trees and the single-array evaluator."""

import numpy as np

from repro.adm import CellSet, LocalArray, parse_schema
from repro.query import afl, parse_expression


class TestRendering:
    def test_paper_merge_example(self):
        schema = parse_schema("C<v1:int64, v2:float64>[i=1,6,3, j=1,6,3]")
        tree = afl.merge_join(afl.redim("A", schema), afl.redim("B", schema))
        assert tree.render() == (
            "mergeJoin(redim(scan(A), <v1:int64, v2:float64>[i=1,6,3, j=1,6,3]), "
            "redim(scan(B), <v1:int64, v2:float64>[i=1,6,3, j=1,6,3]))"
        )

    def test_paper_filter_example(self):
        tree = afl.filter_("A", parse_expression("v1 > 5"))
        assert tree.render() == "filter(scan(A), (v1 > 5))"

    def test_hash_join_plan(self):
        tree = afl.hash_join(
            afl.AflNode("hash", (afl.scan("A"), "v")),
            afl.AflNode("hash", (afl.scan("B"), "w")),
        )
        assert "hashJoin" in tree.render()

    def test_cross(self):
        assert afl.cross("A", "B").render() == "cross(scan(A), scan(B))"

    def test_sort_and_rechunk(self):
        schema = parse_schema("J<v:int64>[k=1,4,2]")
        tree = afl.sort(afl.rechunk("A", schema))
        assert tree.render() == "sort(rechunk(scan(A), <v:int64>[k=1,4,2]))"


class TestFilterEvaluation:
    def test_paper_example(self, figure1_array):
        # SELECT * FROM A WHERE v1 > 5
        filtered = afl.apply_filter(figure1_array, parse_expression("v1 > 5"))
        assert (filtered.cells().attrs["v1"] > 5).all()
        expected = int((figure1_array.cells().attrs["v1"] > 5).sum())
        assert filtered.n_cells == expected

    def test_dimension_predicate(self, figure1_array):
        filtered = afl.apply_filter(figure1_array, parse_expression("i <= 2"))
        assert (filtered.cells().dim_column(0) <= 2).all()

    def test_qualified_names(self, figure1_array):
        filtered = afl.apply_filter(
            figure1_array, parse_expression("A.v1 = 3 AND A.j >= 1")
        )
        assert (filtered.cells().attrs["v1"] == 3).all()

    def test_empty_array(self, small_schema):
        empty = LocalArray.empty(small_schema)
        result = afl.apply_filter(empty, parse_expression("v1 > 5"))
        assert result.n_cells == 0

    def test_schema_preserved(self, figure1_array):
        filtered = afl.apply_filter(figure1_array, parse_expression("v2 < 1"))
        assert filtered.schema == figure1_array.schema


class TestEnvironment:
    def test_columns_exposed_both_ways(self):
        schema = parse_schema("X<a:int64>[i=1,4,2]")
        cells = CellSet(np.array([[1], [2]]), {"a": np.array([7, 8])})
        array = LocalArray.from_cells(schema, cells)
        env = afl.environment_for(array)
        np.testing.assert_array_equal(env["a"], env["X.a"])
        np.testing.assert_array_equal(sorted(env["i"]), [1, 2])
