"""Edge-case coverage for the AQL grammar."""

import pytest

from repro.errors import ParseError
from repro.query import parse_aql
from repro.query.aql import JoinQuery, MultiJoinQuery


class TestGrammarEdges:
    def test_chained_join_keyword(self):
        query = parse_aql(
            "SELECT A.v FROM A JOIN B JOIN C "
            "WHERE A.v = B.v AND B.w = C.w"
        )
        assert isinstance(query, MultiJoinQuery)
        assert query.arrays == ["A", "B", "C"]

    def test_mixed_case_keywords(self):
        query = parse_aql("select * from A join B on A.i = B.i")
        assert isinstance(query, JoinQuery)

    def test_newlines_and_whitespace(self):
        query = parse_aql(
            """SELECT
                 A.v
               FROM A,
                    B
               WHERE A.i = B.i ;"""
        )
        assert isinstance(query, JoinQuery)

    def test_into_before_from_required(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT * FROM A INTO T WHERE A.i = B.i")

    def test_names_starting_with_keyword_letters(self):
        # FROMAGE is a valid array name, not FROM + AGE.
        query = parse_aql("SELECT * FROM FROMAGE WHERE v > 1")
        assert query.array == "FROMAGE"

    def test_group_by_multiple_dims(self):
        query = parse_aql(
            "SELECT sum(v) AS s FROM A WHERE v > 0 GROUP BY i, j"
        )
        assert query.group_by == ["i", "j"]

    def test_group_by_malformed_field(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT sum(v) FROM A GROUP BY 1i")

    def test_aggregate_with_expression_argument(self):
        query = parse_aql("SELECT avg(v * 2 + 1) AS scaled FROM A")
        assert query.select[0].alias == "scaled"
        assert query.select[0].expr.render() == "((v * 2) + 1)"

    def test_count_star_alias(self):
        query = parse_aql("SELECT count(*) FROM A")
        assert query.select[0].alias == "count_all"

    def test_min_function_not_confused_with_array_name(self):
        # `min` as a bare column name in a plain select stays a field.
        query = parse_aql("SELECT v FROM A")
        assert query.select[0].output_name == "v"

    def test_into_name_on_multijoin(self):
        query = parse_aql(
            "SELECT A.v INTO Out FROM A, B, C "
            "WHERE A.v = B.v AND B.w = C.w"
        )
        assert query.output_name == "Out"

    def test_filters_attribute_between_predicates(self):
        query = parse_aql(
            "SELECT A.v FROM A, B "
            "WHERE A.v > 1 AND A.i = B.i AND B.w < 9 AND A.j = B.j"
        )
        assert len(query.predicates) == 2
        assert set(query.filters) == {"A", "B"}

    def test_multijoin_filters(self):
        query = parse_aql(
            "SELECT A.v FROM A, B, C "
            "WHERE A.v = B.v AND B.w = C.w AND C.w > 10"
        )
        assert "C" in query.filters
