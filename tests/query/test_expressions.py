"""Unit tests for the scalar expression parser and evaluator."""

import numpy as np
import pytest

from repro.errors import ParseError
from repro.query.expressions import parse_expression, tokenize


class TestTokenize:
    def test_qualified_names(self):
        assert tokenize("Band1.reflectance + 2") == [
            "Band1.reflectance", "+", "2",
        ]

    def test_operators(self):
        assert tokenize("a<=b") == ["a", "<=", "b"]
        assert tokenize("a<>b") == ["a", "!=", "b"]

    def test_junk_rejected(self):
        with pytest.raises(ParseError):
            tokenize("a ? b")


class TestParse:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert float(expr.evaluate({})) == 7.0

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert float(expr.evaluate({})) == 9.0

    def test_unary_minus(self):
        expr = parse_expression("-a + 5")
        assert float(expr.evaluate({"a": np.asarray(2)})) == 3.0

    def test_ndvi_expression(self):
        expr = parse_expression("(b2 - b1) / (b2 + b1)")
        env = {"b1": np.array([1.0, 2.0]), "b2": np.array([3.0, 2.0])}
        np.testing.assert_allclose(expr.evaluate(env), [0.5, 0.0])

    def test_division_promotes_to_float(self):
        expr = parse_expression("a / b")
        result = expr.evaluate({"a": np.array([1]), "b": np.array([2])})
        assert result[0] == pytest.approx(0.5)

    def test_comparison(self):
        expr = parse_expression("v1 > 5")
        np.testing.assert_array_equal(
            expr.evaluate({"v1": np.array([3, 7])}), [False, True]
        )

    def test_and_or(self):
        expr = parse_expression("a > 1 AND a < 4 OR a = 9")
        np.testing.assert_array_equal(
            expr.evaluate({"a": np.array([0, 2, 9])}), [False, True, True]
        )

    def test_field_refs_collected(self):
        expr = parse_expression("A.v + B.w - A.v")
        assert expr.field_refs() == ["A.v", "B.w", "A.v"]

    def test_qualified_fallback_to_bare(self):
        expr = parse_expression("A.v * 2")
        np.testing.assert_array_equal(
            expr.evaluate({"v": np.array([1, 2])}), [2, 4]
        )

    def test_unknown_field(self):
        expr = parse_expression("nope + 1")
        with pytest.raises(ParseError):
            expr.evaluate({})

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("   ")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + b c")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("(a + b")

    def test_render_roundtrip(self):
        text = "(a - b) / (a + b)"
        expr = parse_expression(text)
        again = parse_expression(expr.render())
        env = {"a": np.array([4.0]), "b": np.array([1.0])}
        assert expr.evaluate(env)[0] == again.evaluate(env)[0]
