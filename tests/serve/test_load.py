"""Load-generator tests: mix determinism, both arrival disciplines,
report accounting, and verification against serial references.

The fast half uses a synthetic backend (instant joins, controllable
failures); the real half drives a small Session through closed- and
open-loop runs and checks the reports end to end.
"""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    JoinServer,
    LoadReport,
    QueryMix,
    run_closed_loop,
    run_open_loop,
    serial_references,
)
from tests.serve.test_server import HASH_QUERY, MERGE_QUERY, build_session

QUERIES = (MERGE_QUERY, HASH_QUERY)


class InstantBackend:
    def __init__(self):
        self.metrics = MetricsRegistry()

    def execute(self, statement, **options):
        return (statement, options.get("tenant"))


class TestQueryMix:
    def test_requires_statements_and_tenants(self):
        with pytest.raises(ValueError, match="statement"):
            QueryMix(statements=[], tenants=["t"])
        with pytest.raises(ValueError, match="tenant"):
            QueryMix(statements=["Q"], tenants=[])

    def test_draws_are_deterministic_per_seed(self):
        mix = QueryMix(
            statements=["Q0", "Q1"], tenants=["a", "b", "c"], seed=3
        )
        first = [mix.draw(np.random.default_rng(0)) for _ in range(20)]
        second = [mix.draw(np.random.default_rng(0)) for _ in range(20)]
        assert first == second
        assert {tenant for _, tenant in first} <= {"a", "b", "c"}

    def test_statement_skew_defaults_uniform(self):
        mix = QueryMix(statements=["Q0", "Q1", "Q2"], tenants=["a"])
        assert np.allclose(mix.statement_weights, 1 / 3)
        hot = QueryMix(
            statements=["Q0", "Q1", "Q2"], tenants=["a"],
            statement_alpha=2.0, seed=0,
        )
        weights = sorted(hot.statement_weights, reverse=True)
        assert weights[0] > 0.5 > weights[-1]
        assert abs(sum(hot.statement_weights) - 1.0) < 1e-9

    def test_tenant_weights_are_zipf_skewed(self):
        mix = QueryMix(
            statements=["Q"], tenants=[f"t{i}" for i in range(6)],
            tenant_alpha=1.5, seed=0,
        )
        weights = sorted(mix.tenant_weights, reverse=True)
        assert weights[0] > weights[-1]
        assert abs(sum(mix.tenant_weights) - 1.0) < 1e-9


class TestClosedLoop:
    def test_counts_and_report_shape(self):
        backend = InstantBackend()
        mix = QueryMix(statements=["Q0", "Q1"], tenants=["a", "b"])
        with JoinServer(backend, max_in_flight=2, coalesce=False) as server:
            report = run_closed_loop(
                server, mix, clients=3, requests_per_client=5
            )
        assert isinstance(report, LoadReport)
        assert report.mode == "closed"
        assert report.clients == 3
        assert report.requests == 15
        assert report.completed == 15
        assert report.shed == 0 and report.errors == 0
        assert report.qps > 0
        assert report.latency_p50 <= report.latency_p99
        assert report.counters["serve_queries_admitted"] == 15
        row = report.row()
        assert row["mode"] == "closed" and row["qps"] == report.qps
        assert {"latency_p50", "latency_p95", "latency_p99",
                "latency_max"} <= set(row)

    def test_validates_arguments(self):
        backend = InstantBackend()
        mix = QueryMix(statements=["Q"], tenants=["a"])
        with JoinServer(backend) as server:
            with pytest.raises(ValueError):
                run_closed_loop(server, mix, clients=0,
                                requests_per_client=1)
            with pytest.raises(ValueError):
                run_closed_loop(server, mix, clients=1,
                                requests_per_client=0)

    def test_errors_are_counted_not_raised(self):
        class Flaky:
            metrics = MetricsRegistry()

            def execute(self, statement, **options):
                raise ExecutionError("nope")

        mix = QueryMix(statements=["Q"], tenants=["a"])
        with JoinServer(Flaky(), coalesce=False) as server:
            report = run_closed_loop(
                server, mix, clients=2, requests_per_client=3
            )
        assert report.errors == 6
        assert report.completed == 0
        assert report.requests == 6


class TestOpenLoop:
    def test_counts_and_schedule(self):
        backend = InstantBackend()
        mix = QueryMix(statements=["Q"], tenants=["a"])
        with JoinServer(backend, max_in_flight=2, coalesce=False) as server:
            report = run_open_loop(
                server, mix, rate_qps=500.0, total_requests=20
            )
        assert report.mode == "open"
        assert report.completed == 20
        assert report.shed == 0 and report.errors == 0
        # 20 arrivals at 500 q/s occupy at least ~38ms of schedule.
        assert report.duration_seconds >= 19 / 500.0

    def test_sheds_when_offered_load_exceeds_capacity(self):
        import threading

        class Slow:
            metrics = MetricsRegistry()
            gate = threading.Event()

            def execute(self, statement, **options):
                self.gate.wait(timeout=10)
                return statement

        backend = Slow()
        mix = QueryMix(statements=["Q0", "Q1", "Q2"], tenants=["a"])
        with JoinServer(
            backend, max_in_flight=1, queue_depth=0, overload="shed",
            coalesce=False,
        ) as server:
            # Arrivals far outrun the (parked) server: everything past
            # the single admitted query must shed, not queue.
            opened = threading.Timer(0.3, backend.gate.set)
            opened.start()
            report = run_open_loop(
                server, mix, rate_qps=200.0, total_requests=12
            )
            opened.join()
        assert report.shed > 0
        assert report.completed + report.shed + report.errors == 12
        assert report.counters["serve_queries_shed"] == report.shed

    def test_validates_arguments(self):
        backend = InstantBackend()
        mix = QueryMix(statements=["Q"], tenants=["a"])
        with JoinServer(backend) as server:
            with pytest.raises(ValueError, match="rate_qps"):
                run_open_loop(server, mix, rate_qps=0.0, total_requests=1)
            with pytest.raises(ValueError, match="request"):
                run_open_loop(server, mix, rate_qps=1.0, total_requests=0)


class TestAgainstRealSession:
    @pytest.fixture(scope="class")
    def session(self):
        return build_session(seed=11, n_cells=120)

    def test_closed_loop_verifies_byte_identity(self, session):
        references = serial_references(session, list(QUERIES))
        session.executor.plan_cache.clear()
        mix = QueryMix(
            statements=list(QUERIES), tenants=["t0", "t1"], seed=5
        )
        with JoinServer(session, max_in_flight=4, queue_depth=8) as server:
            report = run_closed_loop(
                server, mix, clients=4, requests_per_client=4,
                references=references,
            )
        assert report.completed == 16
        assert report.outputs_identical
        assert report.distinct_results_verified >= 1
        # Coalesced requests share results, so distinct results never
        # exceed completions.
        assert report.distinct_results_verified <= report.completed
        # Coalescing is tenant-agnostic, so every request of a tenant
        # can be absorbed into the other tenant's in-flight executions
        # without ever touching the plan cache — per_tenant then lists
        # only the tenants that actually executed, which is at least
        # one and never an unknown name.
        assert report.per_tenant
        assert set(report.per_tenant) <= {"t0", "t1"}

    def test_open_loop_verifies_byte_identity(self, session):
        references = serial_references(session, list(QUERIES))
        mix = QueryMix(
            statements=list(QUERIES), tenants=["t0", "t1"], seed=6
        )
        with JoinServer(
            session, max_in_flight=2, queue_depth=4, overload="shed"
        ) as server:
            report = run_open_loop(
                server, mix, rate_qps=50.0, total_requests=12,
                references=references,
            )
        assert report.completed + report.shed + report.errors == 12
        assert report.errors == 0
        assert report.outputs_identical
