"""JoinServer: admission control, coalescing, lifecycle, and the
multi-client correctness storm.

The deterministic half drives a fake backend whose executions park on an
Event, so the tests control exactly how many queries are in flight when
admission decisions happen. The storm half hammers one real
:class:`~repro.session.Session` from many threads and holds the server
to the only acceptable standard: byte-identical results to serial
execution and cache counters that add up exactly.
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.adm.cells import CellSet
from repro.errors import ExecutionError, Overloaded
from repro.obs.metrics import MetricsRegistry
from repro.serve import JoinServer, result_bytes, tenant_cache_stats
from repro.serve.server import REJECTED_OPTIONS
from repro.session import Session

MERGE_QUERY = "SELECT A.v, B.v FROM A JOIN B ON A.i = B.i AND A.j = B.j"
HASH_QUERY = (
    "SELECT A.v, B.v INTO T<av:int64, bv:int64>[] "
    "FROM A, B WHERE A.v = B.v"
)
QUERIES = (MERGE_QUERY, HASH_QUERY)


class FakeBackend:
    """Backend whose executions park until released; counts concurrency."""

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.gate = threading.Event()
        self.started = threading.Semaphore(0)
        self._lock = threading.Lock()
        self.calls = 0
        self.active = 0
        self.max_active = 0

    def execute(self, statement, **options):
        with self._lock:
            self.calls += 1
            self.active += 1
            self.max_active = max(self.max_active, self.active)
        self.started.release()
        try:
            if not self.gate.wait(timeout=10):
                raise TimeoutError("gate never opened")
            return (statement, tuple(sorted(options.items())))
        finally:
            with self._lock:
                self.active -= 1


def build_session(seed=7, n_cells=150):
    gen = np.random.default_rng(seed)
    session = Session(n_nodes=3, selectivity_hint=0.3)
    for name, sub_seed in (("A", 2 * seed), ("B", 2 * seed + 1)):
        sub = np.random.default_rng(sub_seed)
        coords = np.unique(sub.integers(1, 33, size=(n_cells, 2)), axis=0)
        session.create_and_load(
            f"{name}<v:int64>[i=1,32,8, j=1,32,8]",
            CellSet(coords, {"v": sub.integers(0, 8, len(coords))}),
        )
    return session


class TestAdmissionControl:
    def test_shed_fires_exactly_at_the_bound(self):
        backend = FakeBackend()
        server = JoinServer(
            backend, max_in_flight=2, queue_depth=1, overload="shed",
            coalesce=False,
        )
        try:
            # Fill every permit: 2 running + 1 queued.
            futures = [server.submit(f"Q{i}") for i in range(3)]
            for _ in range(2):
                assert backend.started.acquire(timeout=5)
            assert server.in_flight == 3
            # The 4th request must shed with the typed error...
            with pytest.raises(Overloaded):
                server.submit("Q3")
            counters = backend.metrics.snapshot()["counters"]
            assert counters["serve_queries_shed"] == 1
            assert counters["serve_queries_admitted"] == 3
            # ...and admission must recover once work drains.
            backend.gate.set()
            for future in futures:
                future.result(timeout=5)
            assert server.execute("Q4") is not None
        finally:
            backend.gate.set()
            server.shutdown()

    def test_block_policy_bounds_concurrency(self):
        backend = FakeBackend()
        server = JoinServer(
            backend, max_in_flight=2, queue_depth=0, overload="block",
            coalesce=False,
        )
        try:
            results = []
            threads = [
                threading.Thread(
                    target=lambda i=i: results.append(
                        server.execute(f"Q{i}")
                    ),
                    daemon=True,
                )
                for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for _ in range(2):
                assert backend.started.acquire(timeout=5)
            # Blocked submitters wait; they never shed and never
            # oversubscribe the backend.
            time.sleep(0.05)
            assert backend.max_active <= 2
            backend.gate.set()
            for thread in threads:
                thread.join(timeout=5)
            assert len(results) == 6
            assert backend.max_active <= 2
            counters = backend.metrics.snapshot()["counters"]
            assert counters.get("serve_queries_shed", 0) == 0
        finally:
            backend.gate.set()
            server.shutdown()

    def test_invalid_config_rejected(self):
        backend = FakeBackend()
        with pytest.raises(ExecutionError, match="overload policy"):
            JoinServer(backend, overload="panic")
        with pytest.raises(ExecutionError, match="max_in_flight"):
            JoinServer(backend, max_in_flight=0)
        with pytest.raises(ExecutionError, match="queue_depth"):
            JoinServer(backend, queue_depth=-1)


class TestCoalescing:
    def test_identical_requests_share_one_execution(self):
        backend = FakeBackend()
        server = JoinServer(backend, max_in_flight=2, coalesce=True)
        try:
            leader = server.submit("Q", tenant="t0", planner="tabu")
            assert backend.started.acquire(timeout=5)
            follower = server.submit("Q", tenant="t0", planner="tabu")
            assert follower is leader
            backend.gate.set()
            assert leader.result(timeout=5) is follower.result(timeout=5)
            assert backend.calls == 1
            counters = backend.metrics.snapshot()["counters"]
            assert counters["serve_queries_coalesced"] == 1
            assert counters["serve_queries_admitted"] == 1
            # Both waiters' latencies were recorded.
            histogram = backend.metrics.snapshot()["histograms"]
            assert histogram["serve_latency_seconds"]["count"] == 2
        finally:
            backend.gate.set()
            server.shutdown()

    def test_tenants_share_identical_executions(self):
        # The result is a pure function of statement + options; tenant
        # is cache-namespace metadata, so cross-tenant duplicates
        # coalesce onto one execution.
        backend = FakeBackend()
        server = JoinServer(backend, max_in_flight=2, coalesce=True)
        try:
            first = server.submit("Q", tenant="t0")
            second = server.submit("Q", tenant="t1")
            assert second is first
            backend.gate.set()
            first.result(timeout=5)
            assert backend.calls == 1
        finally:
            backend.gate.set()
            server.shutdown()

    def test_different_options_never_coalesce(self):
        backend = FakeBackend()
        server = JoinServer(backend, max_in_flight=2, coalesce=True)
        try:
            first = server.submit("Q", planner="tabu")
            second = server.submit("Q", planner="baseline")
            assert second is not first
            backend.gate.set()
            first.result(timeout=5)
            second.result(timeout=5)
            assert backend.calls == 2
        finally:
            backend.gate.set()
            server.shutdown()

    def test_coalesce_off_runs_every_request(self):
        backend = FakeBackend()
        backend.gate.set()
        server = JoinServer(backend, max_in_flight=2, coalesce=False)
        try:
            futures = [server.submit("Q") for _ in range(4)]
            for future in futures:
                future.result(timeout=5)
            assert backend.calls == 4
        finally:
            server.shutdown()


class TestLifecycle:
    def test_rejected_options(self):
        backend = FakeBackend()
        server = JoinServer(backend)
        try:
            for option in sorted(REJECTED_OPTIONS):
                with pytest.raises(ExecutionError, match="not servable"):
                    server.submit("Q", **{option: True})
        finally:
            server.shutdown()

    def test_drain_then_submit_is_overloaded(self):
        backend = FakeBackend()
        backend.gate.set()
        server = JoinServer(backend, max_in_flight=2)
        server.execute("Q")
        assert server.drain(timeout=5)
        assert server.closed
        with pytest.raises(Overloaded, match="closed"):
            server.submit("Q")
        server.shutdown()

    def test_drain_waits_for_in_flight_work(self):
        backend = FakeBackend()
        server = JoinServer(backend, max_in_flight=1)
        future = server.submit("Q")
        assert backend.started.acquire(timeout=5)
        assert not server.drain(timeout=0.05), "work still parked"
        backend.gate.set()
        assert server.drain(timeout=5)
        assert future.result(timeout=5) is not None
        server.shutdown()

    def test_context_manager_shuts_down(self):
        backend = FakeBackend()
        backend.gate.set()
        with JoinServer(backend) as server:
            server.execute("Q")
        with pytest.raises(Overloaded):
            server.submit("Q")

    def test_failed_query_counts_and_propagates(self):
        class Exploding:
            metrics = MetricsRegistry()

            def execute(self, statement, **options):
                raise ExecutionError("boom")

        backend = Exploding()
        with JoinServer(backend) as server:
            with pytest.raises(ExecutionError, match="boom"):
                server.execute("Q")
            counters = backend.metrics.snapshot()["counters"]
            assert counters["serve_queries_failed"] == 1
            assert counters.get("serve_queries_completed", 0) == 0
        # Failures release their admission permits: a fresh server over
        # the same bound would otherwise wedge after max_in_flight errors.

    def test_stats_shape(self):
        backend = FakeBackend()
        backend.gate.set()
        with JoinServer(backend, max_in_flight=3, queue_depth=2) as server:
            server.execute("Q")
            stats = server.stats()
        assert stats["max_in_flight"] == 3
        assert stats["queue_depth"] == 2
        assert stats["completed"] == 1
        assert stats["in_flight"] == 0
        assert stats["latency_p50"] > 0


class TestSessionStorm:
    """Many threads, one Session, one JoinServer: the real thing."""

    @pytest.fixture(scope="class")
    def session(self):
        return build_session()

    def _serial_references(self, session):
        return {
            query: result_bytes(session.execute(query, use_cache=False))
            for query in QUERIES
        }

    @pytest.mark.parametrize("coalesce", [True, False])
    def test_storm_is_byte_identical_to_serial(self, session, coalesce):
        references = self._serial_references(session)
        session.executor.plan_cache.clear()
        tenants = ("alpha", "beta", "gamma")
        n_threads, per_thread = 8, 6
        collected: list[list] = [[] for _ in range(n_threads)]
        failures: list[Exception] = []
        barrier = threading.Barrier(n_threads)

        with JoinServer(
            session, max_in_flight=4, queue_depth=16, coalesce=coalesce
        ) as server:

            def storm(index):
                rng = np.random.default_rng(index)
                barrier.wait()
                for _ in range(per_thread):
                    query = QUERIES[int(rng.integers(2))]
                    tenant = tenants[int(rng.integers(len(tenants)))]
                    try:
                        result = server.execute(query, tenant=tenant)
                        collected[index].append((query, result))
                    except Exception as exc:  # pragma: no cover
                        failures.append(exc)

            threads = [
                threading.Thread(target=storm, args=(index,), daemon=True)
                for index in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)

        assert not failures
        flat = [pair for chunk in collected for pair in chunk]
        assert len(flat) == n_threads * per_thread
        for query, result in flat:
            assert result_bytes(result) == references[query]

    def test_storm_cache_counters_add_up(self, session):
        """With coalescing off every request is a real cache lookup, so
        per-tenant hits + misses must equal exactly the requests issued
        — any drift means a counter or cache race."""
        session.executor.plan_cache.clear()
        metrics = session.executor.metrics
        before = {
            name: value
            for name, value in metrics.snapshot()["counters"].items()
            if name.startswith("tenant_cache_")
        }
        tenants = ("hot", "cold")
        n_threads, per_thread = 6, 5

        with JoinServer(
            session, max_in_flight=4, queue_depth=32, coalesce=False
        ) as server:
            issued = {tenant: 0 for tenant in tenants}
            lock = threading.Lock()

            def storm(index):
                rng = np.random.default_rng(100 + index)
                for _ in range(per_thread):
                    query = QUERIES[int(rng.integers(2))]
                    tenant = tenants[int(rng.integers(2))]
                    with lock:
                        issued[tenant] += 1
                    server.execute(query, tenant=tenant)

            threads = [
                threading.Thread(target=storm, args=(index,), daemon=True)
                for index in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)

        counters = metrics.snapshot()["counters"]
        stats = tenant_cache_stats(
            {
                name: value - before.get(name, 0)
                for name, value in counters.items()
            }
        )
        for tenant in tenants:
            lookups = stats[tenant]["hits"] + stats[tenant]["misses"]
            assert lookups == issued[tenant], (tenant, stats[tenant])
            # Each (tenant, query) pair misses at least once. Concurrent
            # first touches may each miss (the cache is thread-safe but
            # deliberately does not dedupe racing fills — that is the
            # server's coalescing layer, off in this test), so there is
            # no exact upper bound; the load is warm-dominated though.
            assert stats[tenant]["misses"] >= 1
            assert stats[tenant]["hits"] > 0
