"""Warm==cold equivalence: cached plans must never change results.

For every physical planner and both join algorithms, three runs of the
same query — cold (populates the cache), warm (served from the cache),
and cache-disabled (full replan) — must produce byte-identical sorted
output cells and the very same join-unit assignment.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm.cells import CellSet
from repro.session import Session

PLANNERS = ("baseline", "mbh", "tabu", "ilp_coarse")

MERGE_QUERY = "SELECT A.v, B.v FROM A JOIN B ON A.i = B.i AND A.j = B.j"
HASH_QUERY = (
    "SELECT A.v, B.v INTO T<av:int64, bv:int64>[] "
    "FROM A, B WHERE A.v = B.v"
)


def sorted_cell_bytes(result):
    packed = result.cells.to_structured(sorted(result.cells.attrs))
    return np.sort(packed).tobytes()


def build_session(seed, n_cells):
    gen = np.random.default_rng(seed)
    session = Session(n_nodes=3, selectivity_hint=0.3)
    for name, sub_seed in (("A", 2 * seed), ("B", 2 * seed + 1)):
        sub = np.random.default_rng(sub_seed)
        coords = np.unique(sub.integers(1, 33, size=(n_cells, 2)), axis=0)
        session.create_and_load(
            f"{name}<v:int64>[i=1,32,8, j=1,32,8]",
            CellSet(coords, {"v": sub.integers(0, 8, len(coords))}),
        )
    return session


@pytest.mark.parametrize("planner", PLANNERS)
@pytest.mark.parametrize(
    "query,join_algo", [(MERGE_QUERY, "merge"), (HASH_QUERY, "hash")]
)
@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_cells=st.integers(min_value=20, max_value=250),
)
def test_warm_equals_cold(planner, query, join_algo, seed, n_cells):
    session = build_session(seed, n_cells)
    options = {"planner": planner, "join_algo": join_algo}

    cold = session.execute(query, **options)
    warm = session.execute(query, **options)
    replan = session.execute(query, use_cache=False, **options)

    assert cold.report.cache.get("status") == "miss"
    assert warm.report.cache.get("status") == "hit"
    assert replan.report.cache == {}

    cold_bytes = sorted_cell_bytes(cold)
    assert sorted_cell_bytes(warm) == cold_bytes
    assert sorted_cell_bytes(replan) == cold_bytes

    if cold.physical_plan is not None:
        assert np.array_equal(
            cold.physical_plan.assignment, warm.physical_plan.assignment
        )
        assert np.array_equal(
            cold.physical_plan.assignment, replan.physical_plan.assignment
        )
