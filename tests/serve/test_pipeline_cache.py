"""Whole-pipeline plan caching: fingerprints, warm replay, invalidation.

A multi-join statement is fingerprinted over its canonical text plus
every base array's ``uid.version.epoch@schema`` token. A warm hit must
replay only the final cached stage, byte-identical to the cold run; any
write to any base array — a catalog-level load *or* a storage-level
``put_chunk`` — must flip the next execution back to a miss.
"""

import numpy as np
import pytest

from repro.adm.cells import CellSet
from repro.adm.chunk import Chunk
from repro.query.aql import parse_aql
from repro.serve.fingerprint import canonical_query, plan_fingerprint
from repro.session import Session

PLANNERS = ("baseline", "mbh", "tabu", "ilp_coarse")

CHAIN_QUERY = (
    "SELECT A.k1, C.k2 FROM A, B, C WHERE A.k1 = B.k1 AND B.k2 = C.k2"
)


def sample_cells(rng, n, k_range=20):
    coords = np.unique(rng.integers(1, 33, size=(n, 2)), axis=0)
    return CellSet(
        coords,
        {
            "k1": rng.integers(0, k_range, len(coords)),
            "k2": rng.integers(0, k_range, len(coords)),
        },
    )


@pytest.fixture
def session():
    rng = np.random.default_rng(13)
    session = Session(n_nodes=3)
    for name, n in (("A", 250), ("B", 120), ("C", 300)):
        session.create_and_load(
            f"{name}<k1:int64, k2:int64>[i=1,32,8, j=1,32,8]",
            sample_cells(rng, n),
        )
    return session


def sorted_cell_bytes(result):
    packed = result.cells.to_structured(sorted(result.cells.attrs))
    return np.sort(packed).tobytes()


class TestWarmEqualsCold:
    @pytest.mark.parametrize("planner", PLANNERS)
    def test_warm_byte_identical_and_final_stage_only(self, session, planner):
        cold = session.execute(CHAIN_QUERY, planner=planner)
        warm = session.execute(CHAIN_QUERY, planner=planner)
        replan = session.execute(CHAIN_QUERY, planner=planner, use_cache=False)

        assert cold.report.cache.get("status") == "miss"
        assert warm.report.cache.get("status") == "hit"
        assert replan.report.cache == {}

        # Cold runs every stage; warm replays only the final cached stage.
        assert len(cold.stage_results) == len(cold.plan.steps)
        assert len(warm.stage_results) == 1
        assert warm.report.meta["stages_cached"] == len(cold.plan.steps)

        cold_bytes = sorted_cell_bytes(cold)
        assert sorted_cell_bytes(warm) == cold_bytes
        assert sorted_cell_bytes(replan) == cold_bytes

    def test_use_cache_false_never_populates(self, session):
        session.execute(CHAIN_QUERY, planner="mbh", use_cache=False)
        assert session.executor.plan_cache.stats()["entries"] == 0
        # The next cached execution is still a genuine miss.
        cold = session.execute(CHAIN_QUERY, planner="mbh")
        assert cold.report.cache.get("status") == "miss"

    def test_planner_is_part_of_the_fingerprint(self, session):
        session.execute(CHAIN_QUERY, planner="mbh")
        other = session.execute(CHAIN_QUERY, planner="tabu")
        assert other.report.cache.get("status") == "miss"


class TestInvalidation:
    def test_load_on_base_array_invalidates(self, session):
        session.execute(CHAIN_QUERY, planner="mbh")
        rng = np.random.default_rng(99)
        session.load("B", sample_cells(rng, 40))
        again = session.execute(CHAIN_QUERY, planner="mbh")
        assert again.report.cache.get("status") == "miss"

    def test_storage_epoch_bump_invalidates(self, session):
        session.execute(CHAIN_QUERY, planner="mbh")
        # A storage-level write that bypasses the catalog version counter:
        # the fingerprint's epoch component must still catch it.
        node = session.cluster.nodes[0]
        schema = session.cluster.schema("C")
        chunk_id = next(iter(node.local_chunk_sizes("C")))
        corner = schema.chunk_corner(chunk_id)
        node.put_chunk(
            "C",
            Chunk(
                chunk_id=chunk_id,
                corner=corner,
                cells=CellSet(
                    np.array([corner], dtype=np.int64) + 1,
                    {
                        "k1": np.array([5], dtype=np.int64),
                        "k2": np.array([5], dtype=np.int64),
                    },
                ),
            ),
        )
        again = session.execute(CHAIN_QUERY, planner="mbh")
        assert again.report.cache.get("status") == "miss"

    def test_unrelated_array_load_keeps_hit(self, session):
        rng = np.random.default_rng(7)
        session.create_and_load(
            "Z<k1:int64, k2:int64>[i=1,32,8, j=1,32,8]",
            sample_cells(rng, 50),
        )
        session.execute(CHAIN_QUERY, planner="mbh")
        session.load("Z", sample_cells(rng, 10))
        warm = session.execute(CHAIN_QUERY, planner="mbh")
        assert warm.report.cache.get("status") == "hit"


class TestFingerprintGrammar:
    def test_canonical_multiway_statement(self):
        query = parse_aql(CHAIN_QUERY)
        text = canonical_query(query)
        assert "FROM A, B, C" in text

    def test_fingerprint_covers_every_base_array(self, session):
        query = parse_aql(CHAIN_QUERY)
        fingerprint = plan_fingerprint(
            query, session.cluster, "tabu", None, {}
        )
        for index, name in enumerate(("A", "B", "C")):
            assert f"array{index}={name}#" in fingerprint.text

    def test_distinct_statements_distinct_fingerprints(self, session):
        base = parse_aql(CHAIN_QUERY)
        reordered = parse_aql(
            "SELECT C.k2, A.k1 FROM A, B, C "
            "WHERE A.k1 = B.k1 AND B.k2 = C.k2"
        )
        fp = plan_fingerprint(base, session.cluster, "tabu", None, {})
        fp2 = plan_fingerprint(reordered, session.cluster, "tabu", None, {})
        assert fp.key != fp2.key


class TestExplainPaths:
    def test_explain_reports_dp_order_and_cache_state(self, session):
        report = session.explain(CHAIN_QUERY, planner="mbh")
        text = report.describe()
        assert "join order" in text
        assert "pipeline plan cache: miss" in text
        session.execute(CHAIN_QUERY, planner="mbh")
        warmed = session.explain(CHAIN_QUERY, planner="mbh")
        assert "pipeline plan cache: hit" in warmed.describe()
        # EXPLAIN itself must never populate the cache.
        assert session.executor.plan_cache.stats()["entries"] == 1

    def test_explain_analyze_per_stage_predictions(self, session):
        report = session.explain_analyze(CHAIN_QUERY, planner="mbh")
        text = report.describe()
        assert "EXPLAIN ANALYZE [multi-join" in text
        assert "estimated" in text and "observed" in text
        assert len(report.stages) == len(report.plan.steps)
        # Warm rerun: only the final stage re-executes, and the report
        # says so.
        warmed = session.explain_analyze(CHAIN_QUERY, planner="mbh")
        assert warmed.stages_cached == len(report.plan.steps)
        assert len(warmed.stages) == 1
        assert "pipeline cache hit" in warmed.describe()
