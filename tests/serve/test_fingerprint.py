"""Plan-fingerprint canonicalisation and sensitivity tests."""

import numpy as np
import pytest

from repro.adm.cells import CellSet
from repro.query.aql import parse_aql
from repro.serve.fingerprint import array_token, canonical_query, plan_fingerprint
from repro.session import Session


def sample_cells(seed=0, n=200, extent=64):
    gen = np.random.default_rng(seed)
    coords = np.unique(gen.integers(1, extent + 1, size=(n, 2)), axis=0)
    return CellSet(coords, {"v": gen.integers(0, 20, len(coords))})


@pytest.fixture
def session():
    session = Session(n_nodes=3, selectivity_hint=0.3)
    session.create_and_load("A<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(1))
    session.create_and_load("B<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(2))
    return session


QUERY = "SELECT A.v, B.v FROM A JOIN B ON A.i = B.i AND A.j = B.j"


def fingerprint_of(session, text, planner="tabu", join_algo=None):
    return session.executor._plan_fingerprint(
        parse_aql(text), planner, join_algo
    )


class TestCanonicalQuery:
    def test_whitespace_and_keyword_case_collapse(self):
        variants = [
            QUERY,
            "select  A.v ,  B.v  from A join B on A.i = B.i and A.j = B.j",
            "SELECT A.v, B.v\nFROM A JOIN B\nWHERE A.i = B.i AND A.j = B.j",
        ]
        rendered = {canonical_query(parse_aql(text)) for text in variants}
        assert len(rendered) == 1

    def test_select_list_matters(self):
        one = canonical_query(parse_aql(QUERY))
        other = canonical_query(
            parse_aql("SELECT A.v FROM A JOIN B ON A.i = B.i AND A.j = B.j")
        )
        assert one != other

    def test_predicate_order_preserved(self):
        flipped = "SELECT A.v, B.v FROM A JOIN B ON A.j = B.j AND A.i = B.i"
        assert canonical_query(parse_aql(QUERY)) != canonical_query(
            parse_aql(flipped)
        )

    def test_pushdown_filters_rendered(self):
        filtered = (
            "SELECT A.v, B.v FROM A JOIN B "
            "WHERE A.i = B.i AND A.j = B.j AND A.v > 5"
        )
        assert canonical_query(parse_aql(QUERY)) != canonical_query(
            parse_aql(filtered)
        )


class TestFingerprintSensitivity:
    def test_identical_state_identical_key(self, session):
        first = fingerprint_of(session, QUERY)
        second = fingerprint_of(
            session,
            "  select A.v ,  B.v\nfrom A join B\n"
            "on A.i = B.i and A.j = B.j  ",
        )
        assert first.key == second.key

    def test_planner_and_algo_in_key(self, session):
        base = fingerprint_of(session, QUERY)
        assert fingerprint_of(session, QUERY, planner="mbh").key != base.key
        assert fingerprint_of(session, QUERY, join_algo="hash").key != base.key

    def test_load_changes_key(self, session):
        before = fingerprint_of(session, QUERY)
        session.load("A", sample_cells(9, n=40))
        assert fingerprint_of(session, QUERY).key != before.key

    def test_rebalance_changes_key(self, session):
        before = fingerprint_of(session, QUERY)
        session.rebalance("B")
        assert fingerprint_of(session, QUERY).key != before.key

    def test_drop_recreate_changes_key(self, session):
        before = array_token(session.cluster, "A")
        cells = session.array("A").cells()
        session.execute("DROP ARRAY A")
        session.create_and_load("A<v:int64>[i=1,64,8, j=1,64,8]", cells)
        after = array_token(session.cluster, "A")
        # Same name, same data, same version arithmetic — but a fresh
        # incarnation uid, so cached plans for old A can never alias.
        assert before != after

    def test_executor_options_in_key(self, session):
        before = fingerprint_of(session, QUERY)
        session.executor.n_buckets = 77
        assert fingerprint_of(session, QUERY).key != before.key

    def test_direct_storage_write_changes_key(self, session):
        before = fingerprint_of(session, QUERY)
        node = session.cluster.nodes[0]
        store = node.store("A")
        chunk_id, chunk = next(iter(store.chunks.items()))
        node.put_chunk("A", chunk)  # bypasses the catalog entirely
        assert fingerprint_of(session, QUERY).key != before.key

    def test_text_mentions_both_arrays(self, session):
        text = plan_fingerprint(
            parse_aql(QUERY), session.cluster, "tabu", None, {}
        ).text
        assert "left=A#" in text and "right=B#" in text
