"""Session-level plan-cache behaviour: warm hits, stale-data misses."""

import numpy as np
import pytest

from repro.adm.cells import CellSet
from repro.errors import ExecutionError
from repro.session import Session

QUERY = "SELECT A.v, B.v FROM A JOIN B ON A.i = B.i AND A.j = B.j"


def sample_cells(seed, n=300, extent=64):
    gen = np.random.default_rng(seed)
    coords = np.unique(gen.integers(1, extent + 1, size=(n, 2)), axis=0)
    return CellSet(coords, {"v": gen.integers(0, 20, len(coords))})


def sorted_cell_bytes(result):
    packed = result.cells.to_structured(sorted(result.cells.attrs))
    return np.sort(packed).tobytes()


@pytest.fixture
def session():
    session = Session(n_nodes=3, selectivity_hint=0.3)
    session.create_and_load("A<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(1))
    session.create_and_load("B<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(2))
    return session


def run(session, **options):
    return session.execute(QUERY, planner="tabu", **options)


def cache_status(result):
    return result.report.cache.get("status")


class TestWarmPath:
    def test_first_miss_then_hits(self, session):
        assert cache_status(run(session)) == "miss"
        second = run(session)
        third = run(session)
        assert cache_status(second) == "hit"
        assert cache_status(third) == "hit"
        assert session.plan_cache.stats()["hits"] == 2

    def test_noop_statements_keep_hit(self, session):
        cold = run(session)
        session.execute("ANALYZE A")  # stats refresh reads, never writes
        session.validate("A")
        session.describe("A")
        warm = run(session)
        assert cache_status(warm) == "hit"
        assert sorted_cell_bytes(warm) == sorted_cell_bytes(cold)

    def test_warm_hit_skips_planning_phases(self, session):
        run(session)
        warm = run(session)
        assert set(warm.report.prepare_breakdown) == {"cache_lookup"}

    def test_use_cache_false_bypasses(self, session):
        cold = run(session)
        bypass = run(session, use_cache=False)
        assert bypass.report.cache == {}
        assert sorted_cell_bytes(bypass) == sorted_cell_bytes(cold)
        # ... and did not disturb the cached entry
        assert cache_status(run(session)) == "hit"

    def test_cache_disabled_session(self):
        session = Session(n_nodes=3, plan_cache_size=0)
        session.create_and_load(
            "A<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(1)
        )
        session.create_and_load(
            "B<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(2)
        )
        assert session.plan_cache is None
        assert run(session).report.cache == {}


class TestInvalidation:
    @pytest.mark.parametrize("target", ["A", "B"])
    def test_load_either_input_misses_and_recomputes(self, session, target):
        run(session)
        session.load(target, sample_cells(7, n=120))
        stale_aware = run(session)
        assert cache_status(stale_aware) == "miss"
        # the recomputed plan must reflect the new data, not the old plan:
        fresh = run(session, use_cache=False)
        assert sorted_cell_bytes(stale_aware) == sorted_cell_bytes(fresh)

    def test_rebalance_misses(self, session):
        run(session)
        session.rebalance("A")
        assert cache_status(run(session)) == "miss"

    def test_drop_restore_misses(self, session, tmp_path):
        cold = run(session)
        path = tmp_path / "a.adm"
        session.save("A", path)
        session.execute("DROP ARRAY A")
        assert session.plan_cache.stats()["entries"] == 0  # eager purge
        session.restore(path, name="A")
        revived = run(session)
        assert cache_status(revived) == "miss"
        assert sorted_cell_bytes(revived) == sorted_cell_bytes(cold)

    def test_direct_storage_write_misses(self, session):
        run(session)
        # a write that bypasses the catalog still flips the storage epoch
        node = next(
            node for node in session.cluster.nodes if node.has_array("A")
        )
        chunk = next(iter(node.store("A").chunks.values()))
        node.put_chunk("A", chunk)
        assert cache_status(run(session)) == "miss"

    def test_unrelated_array_does_not_invalidate(self, session):
        run(session)
        session.create_and_load(
            "C<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(5)
        )
        assert cache_status(run(session)) == "hit"

    def test_invalidate_cached_plans_api(self, session):
        run(session)
        assert session.executor.invalidate_cached_plans("A") == 1
        assert cache_status(run(session)) == "miss"


class TestOptionValidation:
    def test_unknown_join_option_raises(self, session):
        with pytest.raises(ExecutionError, match="unknown query option"):
            run(session, plannner="tabu")  # typo must not be dropped

    def test_error_lists_accepted_options(self, session):
        with pytest.raises(ExecutionError, match="use_cache"):
            run(session, bogus=True)

    def test_options_on_ddl_raise(self, session):
        with pytest.raises(ExecutionError, match="do not apply"):
            session.execute("ANALYZE A", planner="tabu")
        with pytest.raises(ExecutionError, match="do not apply"):
            session.execute(
                "CREATE ARRAY D<v:int64>[i=1,8,8]", store_result=True
            )

    def test_valid_options_accepted(self, session):
        result = session.execute(
            QUERY, planner="mbh", join_algo="hash", n_workers=None,
            use_cache=True, store_result=False,
        )
        assert result.report.planner == "mbh"
