"""PlanCache LRU mechanics and CounterSet bookkeeping."""

import numpy as np
import pytest

from repro.obs import CounterSet
from repro.serve.cache import CachedPlan, PlanCache
from repro.serve.fingerprint import Fingerprint


def make_entry(tag, arrays=("A", "B")):
    return CachedPlan(
        join_schema=None,
        logical_plan=None,
        n_units=4,
        slice_table=None,
        assignment=np.zeros(4, dtype=np.int64),
        physical_plan=None,
        arrays=tuple(arrays),
        fingerprint=Fingerprint(key=f"key-{tag}", text=f"text-{tag}"),
    )


class TestPlanCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(capacity=0)
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(capacity=-3)

    def test_get_counts_hits_and_misses(self):
        cache = PlanCache(capacity=4)
        entry = make_entry(1)
        assert cache.get(entry.fingerprint) is None
        cache.put(entry)
        assert cache.get(entry.fingerprint) is entry
        assert cache.stats() == {"misses": 1, "hits": 1, "entries": 1}

    def test_lru_bound_evicts_oldest(self):
        cache = PlanCache(capacity=2)
        first, second, third = make_entry(1), make_entry(2), make_entry(3)
        cache.put(first)
        cache.put(second)
        cache.put(third)
        assert len(cache) == 2
        assert first.fingerprint.key not in cache
        assert cache.counters.value("evictions") == 1

    def test_get_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        first, second, third = make_entry(1), make_entry(2), make_entry(3)
        cache.put(first)
        cache.put(second)
        cache.get(first.fingerprint)  # first is now the most recent
        cache.put(third)
        assert first.fingerprint.key in cache
        assert second.fingerprint.key not in cache

    def test_put_same_key_replaces_without_eviction(self):
        cache = PlanCache(capacity=2)
        stale, fresh = make_entry(1), make_entry(1)
        cache.put(stale)
        cache.put(fresh)
        assert len(cache) == 1
        assert cache.get(fresh.fingerprint) is fresh
        assert cache.counters.value("evictions") == 0

    def test_invalidate_array_removes_only_readers(self):
        cache = PlanCache(capacity=8)
        cache.put(make_entry(1, arrays=("A", "B")))
        cache.put(make_entry(2, arrays=("B", "C")))
        cache.put(make_entry(3, arrays=("C", "D")))
        assert cache.invalidate_array("B") == 2
        assert len(cache) == 1
        assert cache.counters.value("invalidations") == 2
        assert cache.invalidate_array("Z") == 0

    def test_clear(self):
        cache = PlanCache(capacity=4)
        cache.put(make_entry(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["entries"] == 0

    def test_shared_counters_instance(self):
        counters = CounterSet()
        cache = PlanCache(capacity=4, counters=counters)
        cache.get(make_entry(1).fingerprint)
        assert counters.value("misses") == 1


class TestCounterSet:
    def test_increment_value_snapshot(self):
        counters = CounterSet()
        counters.increment("hits")
        counters.increment("misses", 2)
        counters.increment("hits")
        assert counters.value("hits") == 2
        assert counters.value("absent") == 0
        assert counters.snapshot() == {"hits": 2, "misses": 2}

    def test_snapshot_is_a_copy(self):
        counters = CounterSet()
        counters.increment("hits")
        snapshot = counters.snapshot()
        snapshot["hits"] = 99
        assert counters.value("hits") == 1

    def test_reset(self):
        counters = CounterSet()
        counters.increment("hits")
        counters.reset()
        assert counters.snapshot() == {}

    def test_describe(self):
        counters = CounterSet()
        assert counters.describe() == "(no events recorded)"
        counters.increment("misses")
        counters.increment("hits", 3)
        assert counters.describe() == "hits=3 misses=1"
