"""The serving telemetry plane, scraped over real HTTP.

These tests run a live :class:`JoinServer` (fake parked backend for
admission-shape tests, a real session for end-to-end ones), attach the
monitor thread, and talk to it the way Prometheus and an operator
would: GET the endpoints, parse the exposition, read the query log off
disk, load the capture traces.
"""

import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ExecutionError, Overloaded
from repro.obs.telemetry import QueryLog, validate_exposition
from repro.obs.trace import validate_chrome_trace
from repro.serve import JoinServer
from repro.serve.monitor import (
    RequestRecord,
    SlowQueryCapture,
    TraceSampler,
    request_tracer,
    scrape,
    scrape_statz,
)
from repro.serve.server import WINDOW_TENANT_CAP

from tests.serve.test_server import MERGE_QUERY, FakeBackend, build_session


@pytest.fixture(scope="module")
def session():
    return build_session()


class TestRequestTracer:
    def test_executed_request_has_queue_and_execute_spans(self):
        record = RequestRecord(
            seq=3, statement="SELECT 1", tenant="t0",
            arrival=100.0, started=100.5, finished=101.25,
        )
        record.latency = 1.25
        trace = request_tracer(record).chrome_trace()
        validate_chrome_trace(trace)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [event["name"] for event in spans] == ["queue_wait", "execute"]
        # Spans are epoch-relative to arrival: 0.5s wait, 1.25s total.
        execute = spans[1]
        assert execute["ts"] == pytest.approx(0.5e6)
        assert execute["dur"] == pytest.approx(0.75e6)
        assert execute["args"]["seq"] == 3
        assert execute["args"]["tenant"] == "t0"

    def test_coalesced_request_has_single_wait_span(self):
        record = RequestRecord(
            seq=4, statement="SELECT 1", tenant=None,
            arrival=10.0, coalesced=True,
        )
        record.latency = 0.25
        trace = request_tracer(record).chrome_trace()
        validate_chrome_trace(trace)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [event["name"] for event in spans] == ["wait_shared"]


class TestSamplerAndCapture:
    def test_sampler_one_in_n(self, tmp_path):
        sampler = TraceSampler(3, str(tmp_path), limit=16)
        sampled = [seq for seq in range(1, 10) if sampler.should_sample(seq)]
        assert sampled == [3, 6, 9]
        assert not TraceSampler(0).should_sample(5)

    def test_sampler_retention_bounded(self, tmp_path):
        sampler = TraceSampler(1, str(tmp_path), limit=2)
        for seq in range(1, 5):
            record = RequestRecord(
                seq=seq, statement="q", tenant=None, arrival=0.0,
                started=0.0, finished=0.1,
            )
            sampler.record(record)
        assert sampler.sampled == 4
        assert len(sampler.traces) == 2
        assert len(list(tmp_path.iterdir())) == 2

    def test_slow_capture_writes_loadable_trace(self, tmp_path):
        capture = SlowQueryCapture(0.5, str(tmp_path), limit=8)
        fast = RequestRecord(
            seq=1, statement="q", tenant="t", arrival=0.0,
            started=0.0, finished=0.1,
        )
        fast.latency = 0.1
        assert capture.consider(fast) is None
        slow = RequestRecord(
            seq=2, statement="q", tenant="t", arrival=0.0,
            started=0.2, finished=1.2,
        )
        slow.latency = 1.2
        trace_path = capture.consider(slow)
        assert trace_path is not None
        with open(trace_path) as handle:
            validate_chrome_trace(json.load(handle))
        explain_path = trace_path.replace(".trace.json", ".explain.txt")
        text = open(explain_path).read()
        assert "seq=2" in text
        assert "(no explain backend configured)" in text
        assert capture.captures == 1

    def test_slow_capture_retention_drops_oldest_group(self, tmp_path):
        capture = SlowQueryCapture(0.0, str(tmp_path), limit=2)
        for seq in range(1, 4):
            record = RequestRecord(
                seq=seq, statement="q", tenant=None, arrival=0.0,
                started=0.0, finished=0.2,
            )
            record.latency = 0.2
            capture.consider(record)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert len(names) == 4  # 2 groups x (trace + explain)
        assert not any("slow-000001" in name for name in names)


class TestMonitorEndpoints:
    def test_metrics_healthz_statz_over_http(self, session):
        with JoinServer(session, max_in_flight=2) as server:
            with server.monitor() as monitor:
                for index in range(3):
                    server.execute(MERGE_QUERY, tenant=f"t{index % 2}")
                text = scrape(monitor.url)
                assert validate_exposition(text) == []
                assert "repro_serve_latency_seconds_bucket" in text
                assert 'repro_tenant_cache_misses_total{tenant="t0"}' in text
                assert "repro_serve_queries_completed_total 3" in text

                health = json.loads(scrape(monitor.url, "/healthz"))
                assert health == {"status": "ok", "in_flight": 0}

                statz = scrape_statz(monitor.url)
                assert statz["completed"] == 3
                window = statz["window"]
                assert window["count"] == 3
                assert window["tenants"]["t0"]["p99"] > 0
                assert "metrics" in statz

                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    scrape(monitor.url, "/nonsense")
                assert excinfo.value.code == 404

    def test_healthz_degrades_once_draining(self):
        backend = FakeBackend()
        backend.gate.set()
        server = JoinServer(backend, max_in_flight=2)
        with server.monitor() as monitor:
            server.drain()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                scrape(monitor.url, "/healthz")
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert payload["status"] == "closing"
        server.shutdown()

    def test_scrape_counters_move(self):
        # A fresh session: scrape counters live in the session registry,
        # which the module-scoped fixture shares across tests.
        with JoinServer(build_session()) as server:
            with server.monitor() as monitor:
                scrape(monitor.url)
                scrape(monitor.url)
                text = scrape(monitor.url)
        assert "repro_monitor_scrapes_metrics_total 3" in text


class TestQueryLogIntegration:
    def test_one_record_per_request_including_coalesced_and_shed(
        self, tmp_path
    ):
        backend = FakeBackend()
        log_path = tmp_path / "queries.jsonl"
        server = JoinServer(
            backend, max_in_flight=1, queue_depth=0, overload="shed",
            coalesce=True, query_log=str(log_path),
        )
        try:
            leader = server.submit("Q", tenant="a")
            backend.started.acquire(timeout=5)
            follower = server.submit("Q", tenant="b")  # coalesces
            assert follower is leader
            with pytest.raises(Overloaded):
                server.submit("R", tenant="c")  # sheds
            backend.gate.set()
            leader.result(timeout=5)
        finally:
            backend.gate.set()
            server.shutdown()
        records = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert len(records) == 3
        by_outcome = {}
        for record in records:
            by_outcome.setdefault(record["outcome"], []).append(record)
        assert len(by_outcome["ok"]) == 2
        assert len(by_outcome["shed"]) == 1
        assert by_outcome["shed"][0]["shed"] is True
        coalesced = [r for r in records if r["coalesced"]]
        assert len(coalesced) == 1
        assert coalesced[0]["tenant"] == "b"
        # Stable schema: every record carries every meta field.
        for record in records:
            for field in ("kernel", "parallel_mode", "units_split",
                          "runtime_resplits", "fingerprint", "ts",
                          "latency_seconds", "cache", "sampled"):
                assert field in record

    def test_real_execution_populates_cache_and_meta(self, tmp_path):
        # Fresh session: the first execution must be a cold cache miss.
        log_path = tmp_path / "queries.jsonl"
        with JoinServer(build_session(), query_log=str(log_path)) as server:
            server.execute(MERGE_QUERY, tenant="t0")
            server.execute(MERGE_QUERY, tenant="t0")
        # Records land in callback-completion order, not sequence order;
        # the seq field carries the true arrival order.
        first, second = sorted(
            (json.loads(line) for line in log_path.read_text().splitlines()),
            key=lambda record: record["seq"],
        )
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert first["kernel"] is not None
        assert first["fingerprint"] == second["fingerprint"]

    def test_shared_query_log_not_closed_by_server(self, tmp_path):
        backend = FakeBackend()
        backend.gate.set()
        log = QueryLog(tmp_path / "q.jsonl")
        with JoinServer(backend, query_log=log) as server:
            server.execute("Q")
        log.log({"still": "open"})  # caller owns it
        log.close()

    def test_owned_query_log_closed_on_shutdown(self, tmp_path):
        backend = FakeBackend()
        backend.gate.set()
        server = JoinServer(backend, query_log=str(tmp_path / "q.jsonl"))
        server.execute("Q")
        server.shutdown()
        with pytest.raises(ValueError):
            server._query_log.log({"late": True})


class TestServerTelemetryIntegration:
    def test_sampling_and_slow_capture_on_live_server(
        self, session, tmp_path
    ):
        capture_dir = tmp_path / "captures"
        with JoinServer(
            session, trace_sample=1, slow_query_seconds=0.0,
            capture_dir=str(capture_dir), coalesce=False,
        ) as server:
            for _ in range(3):
                server.execute(MERGE_QUERY, tenant="t0")
        # Captures run in the done-callback, which may lag the caller;
        # shutdown joins the pool workers, so by here they are all in.
        stats = server.stats()["telemetry"]
        assert stats["trace_sample"] == 1
        assert stats["sampled"] == 3
        assert stats["slow_captures"] == 3
        # Explain-analyze ran for at least one capture (serialised on a
        # non-blocking lock, so concurrent captures may skip it).
        assert stats["slow_explains"] >= 1
        traces = [
            name for name in os.listdir(capture_dir)
            if name.endswith(".trace.json")
        ]
        assert traces
        for name in traces:
            with open(capture_dir / name) as handle:
                validate_chrome_trace(json.load(handle))
        explains = [
            name for name in os.listdir(capture_dir)
            if name.endswith(".explain.txt")
        ]
        assert any(
            "EXPLAIN ANALYZE" in (capture_dir / name).read_text()
            for name in explains
        )

    def test_occupancy_gauges_track_requests(self):
        backend = FakeBackend()
        server = JoinServer(backend, max_in_flight=1, queue_depth=1)
        try:
            first = server.submit("A")
            backend.started.acquire(timeout=5)
            second = server.submit("B")  # admitted, waiting for a thread
            stats = server.stats()
            assert stats["in_flight"] == 2
            assert stats["running"] == 1
            assert stats["queued"] == 1
            backend.gate.set()
            first.result(timeout=5)
            second.result(timeout=5)
            server.drain()
            stats = server.stats()
            assert stats["in_flight"] == 0
            assert stats["running"] == 0
            assert stats["queued"] == 0
        finally:
            backend.gate.set()
            server.shutdown()

    def test_tenant_window_cardinality_cap(self):
        backend = FakeBackend()
        backend.gate.set()
        with JoinServer(backend) as server:
            for index in range(WINDOW_TENANT_CAP + 5):
                server.execute("Q", tenant=f"t{index}")
            window = server.stats()["window"]
        assert len(window["tenants"]) == WINDOW_TENANT_CAP + 1
        assert "_other" in window["tenants"]
        assert window["tenants"]["_other"]["count"] == 5
        assert window["count"] == WINDOW_TENANT_CAP + 5

    def test_config_validation(self):
        backend = FakeBackend()
        with pytest.raises(ExecutionError, match="trace_sample"):
            JoinServer(backend, trace_sample=-1)
        with pytest.raises(ExecutionError, match="capture_dir"):
            JoinServer(backend, slow_query_seconds=1.0)
        with pytest.raises(ExecutionError, match="window_seconds"):
            JoinServer(backend, window_seconds=0.0)


class TestScrapeUnderLoad:
    def test_closed_loop_with_monitor_scrapes_validly(self, session):
        from repro.serve.load import QueryMix, run_closed_loop

        mix = QueryMix(
            statements=[MERGE_QUERY], tenants=["a", "b"], seed=3
        )
        with JoinServer(session, max_in_flight=2) as server:
            with server.monitor() as monitor:
                report = run_closed_loop(
                    server, mix, clients=2, requests_per_client=5,
                    monitor=monitor, scrape_interval=0.005,
                )
        assert report.completed == 10
        assert report.scrapes >= 1
        assert report.scrape_errors == []
