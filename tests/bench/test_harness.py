"""Unit tests for the benchmark harness utilities."""

import numpy as np
import pytest

from repro.bench.harness import (
    ExperimentRow,
    fit_linear_r2,
    fit_power_law,
    format_table,
)


class TestPowerLaw:
    def test_exact_fit(self):
        x = np.array([1.0, 10.0, 100.0, 1000.0])
        y = 3.0 * x ** 0.7
        a, b, r2 = fit_power_law(x, y)
        assert a == pytest.approx(3.0)
        assert b == pytest.approx(0.7)
        assert r2 == pytest.approx(1.0)

    def test_noise_reduces_r2(self, rng):
        x = np.logspace(0, 4, 30)
        y = 2.0 * x ** 0.5 * rng.lognormal(0.0, 0.8, 30)
        _, _, r2 = fit_power_law(x, y)
        assert 0.0 < r2 < 1.0

    def test_nonpositive_filtered(self):
        x = np.array([0.0, 1.0, 10.0, 100.0])
        y = np.array([5.0, 1.0, 10.0, 100.0])
        _, b, r2 = fit_power_law(x, y)
        assert b == pytest.approx(1.0)
        assert r2 == pytest.approx(1.0)


class TestLinearR2:
    def test_perfect(self):
        x = np.arange(10.0)
        assert fit_linear_r2(x, 2 * x + 1) == pytest.approx(1.0)

    def test_uncorrelated_near_zero(self, rng):
        x = rng.uniform(0, 1, 200)
        y = rng.uniform(0, 1, 200)
        assert fit_linear_r2(x, y) < 0.2


class TestFormatTable:
    def test_renders_rows(self):
        rows = [
            ExperimentRow({"planner": "mbh"}, {"total_s": 1.23456}),
            ExperimentRow({"planner": "tabu"}, {"total_s": 2.0}),
        ]
        table = format_table(rows, ["planner"], ["total_s"], title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "planner" in lines[1]
        assert any("mbh" in line for line in lines)
        assert any("1.235" in line for line in lines)

    def test_missing_values_blank(self):
        rows = [ExperimentRow({"planner": "x"}, {})]
        table = format_table(rows, ["planner"], ["total_s"])
        assert "x" in table


class TestExperimentRow:
    def test_get_prefers_labels(self):
        row = ExperimentRow({"alpha": 1.0}, {"total_s": 2.0})
        assert row.get("alpha") == 1.0
        assert row.get("total_s") == 2.0
