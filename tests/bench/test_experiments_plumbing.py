"""Tests for the experiment-runner plumbing (fast paths only)."""

import numpy as np
import pytest

from repro.bench.experiments import (
    ExperimentResult,
    make_cluster,
    random_placement,
)
from repro.bench.harness import ExperimentRow
from repro.cluster import NetworkParams
from repro.workloads import skewed_merge_pair


class TestExperimentResult:
    def make(self):
        rows = [
            ExperimentRow({"planner": "mbh", "alpha": 1.0}, {"t": 1.0}),
            ExperimentRow({"planner": "tabu", "alpha": 1.0}, {"t": 2.0}),
            ExperimentRow({"planner": "mbh", "alpha": 2.0}, {"t": 3.0}),
        ]
        return ExperimentResult(
            name="demo", rows=rows,
            label_keys=["planner", "alpha"], value_keys=["t"],
        )

    def test_select(self):
        result = self.make()
        assert len(result.select(planner="mbh")) == 2
        assert len(result.select(planner="mbh", alpha=2.0)) == 1

    def test_value(self):
        assert self.make().value("t", planner="tabu", alpha=1.0) == 2.0

    def test_value_ambiguous(self):
        with pytest.raises(KeyError):
            self.make().value("t", planner="mbh")

    def test_value_missing(self):
        with pytest.raises(KeyError):
            self.make().value("t", planner="ilp", alpha=1.0)

    def test_table_renders(self):
        table = self.make().table()
        assert "demo" in table
        assert "tabu" in table


class TestPlacementHelpers:
    def test_random_placement_deterministic(self):
        place = random_placement(42)
        ids = list(range(50))
        assert place(ids, 4) == place(ids, 4)
        assert place(ids, 4) != random_placement(43)(ids, 4)

    def test_make_cluster_policies(self):
        array_a, array_b = skewed_merge_pair(0.5, cells_per_array=5_000, seed=1)
        cluster = make_cluster(
            [array_a, array_b], 3, seed=2, placement=["random", "block"],
            network=NetworkParams(bandwidth_cells_per_s=1000.0),
        )
        assert cluster.network.bandwidth_cells_per_s == 1000.0
        # Block placement: B's chunk-to-node map is monotone.
        entry = cluster.catalog.entry("B")
        nodes = [
            entry.chunk_locations[cid] for cid in sorted(entry.chunk_locations)
        ]
        assert nodes == sorted(nodes)
        # Random placement generally is not.
        entry_a = cluster.catalog.entry("A")
        nodes_a = [
            entry_a.chunk_locations[cid]
            for cid in sorted(entry_a.chunk_locations)
        ]
        assert nodes_a != sorted(nodes_a)

    def test_counts_preserved(self):
        array_a, array_b = skewed_merge_pair(1.0, cells_per_array=5_000, seed=3)
        cluster = make_cluster([array_a, array_b], 4, seed=4)
        assert cluster.array_cell_count("A") == array_a.n_cells
        assert cluster.array_cell_count("B") == array_b.n_cells
        assert (
            np.asarray(cluster.node_cell_counts("A")).sum() == array_a.n_cells
        )
