"""End-to-end integration tests across the whole stack.

Larger-scale joins cross-checked against brute-force references, the
A:D join type (which the paper notes existing array engines do not
support at all), agreement between every planner and every algorithm,
and full executions over the real-data simulacra.
"""

from collections import Counter

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray, parse_schema
from repro.cluster import Cluster
from repro.engine import ShuffleJoinExecutor
from repro.workloads import ais_tracks, modis_pair, skewed_merge_pair


def shifted_cluster(arrays, n_nodes=5):
    cluster = Cluster(n_nodes=n_nodes)
    for shift, array in enumerate(arrays):
        cluster.load_array(
            array,
            placement=lambda ids, k, s=shift: [
                (rank + s) % k for rank in range(len(ids))
            ],
        )
    return cluster


class TestModerateScaleMergeJoin:
    def test_skewed_pair_correct_everywhere(self):
        array_a, array_b = skewed_merge_pair(1.5, cells_per_array=30_000, seed=9)
        cluster = shifted_cluster([array_a, array_b])
        count_a = Counter(map(tuple, array_a.cells().coords))
        count_b = Counter(map(tuple, array_b.cells().coords))
        expected = sum(count_a[c] * count_b[c] for c in count_a)

        executor = ShuffleJoinExecutor(
            cluster, selectivity_hint=0.2, ilp_time_budget_s=1.0
        )
        query = (
            "SELECT A.v1 + B.v1 AS s FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        outputs = {}
        for planner in ("baseline", "mbh", "tabu", "ilp_coarse"):
            result = executor.execute(query, planner=planner)
            assert result.array.n_cells == expected
            outputs[planner] = result.cells
        # Identical outputs regardless of the physical plan.
        reference = outputs.pop("baseline")
        for cells in outputs.values():
            assert cells.same_cells(reference)


class TestAttributeDimensionJoin:
    """A:D joins — unsupported by the array engines the paper surveys,
    enabled by the shuffle join framework's schema inference."""

    @pytest.fixture
    def ad_cluster(self):
        rng = np.random.default_rng(21)
        cluster = Cluster(n_nodes=3)
        # α: a 1-D array whose dimension i will match β's attribute w.
        n = 500
        coords = np.arange(1, n + 1).reshape(-1, 1)
        cluster.create_array(
            f"A<v:int64>[i=1,{n},50]",
            CellSet(coords, {"v": rng.integers(0, 100, n)}),
        )
        coords_b = np.arange(1, 301).reshape(-1, 1)
        cluster.create_array(
            "B<w:int64>[j=1,300,50]",
            CellSet(coords_b, {"w": rng.integers(1, n + 1, 300)}),
            placement="block",
        )
        return cluster

    def test_paper_example_query(self, ad_cluster):
        # SELECT a.v INTO <v:int>[...] FROM a, B WHERE a.i = B.w
        executor = ShuffleJoinExecutor(ad_cluster, selectivity_hint=0.4)
        result = executor.execute(
            "SELECT A.v, B.j FROM A, B WHERE A.i = B.w", planner="tabu"
        )
        a = ad_cluster.array_cells("A")
        b = ad_cluster.array_cells("B")
        v_by_i = dict(zip(a.coords[:, 0].tolist(), a.attrs["v"].tolist()))
        expected = sum(1 for w in b.attrs["w"] if int(w) in v_by_i)
        assert result.array.n_cells == expected
        # Every output row joins the right v to the right broadcast.
        j_to_w = dict(zip(b.coords[:, 0].tolist(), b.attrs["w"].tolist()))
        for v, j in zip(result.cells.attrs["v"], result.cells.attrs["j"]):
            assert v_by_i[j_to_w[int(j)]] == v

    def test_hash_and_merge_agree_on_ad(self, ad_cluster):
        executor = ShuffleJoinExecutor(ad_cluster, selectivity_hint=0.4)
        query = "SELECT A.v FROM A, B WHERE A.i = B.w"
        hash_out = executor.execute(query, planner="mbh", join_algo="hash").cells
        merge_out = executor.execute(query, planner="mbh", join_algo="merge").cells
        assert hash_out.same_cells(merge_out)


class TestRealDataJoins:
    def test_ais_modis_join_produces_port_matches(self):
        band, _ = modis_pair(cells=40_000, seed=30)
        tracks = ais_tracks(cells=30_000, seed=31)
        cluster = shifted_cluster([band, tracks], n_nodes=4)
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=1.0)
        result = executor.execute(
            "SELECT Band1.reflectance, Broadcast.ship_id "
            "FROM Band1, Broadcast "
            "WHERE Band1.lon = Broadcast.lon AND Band1.lat = Broadcast.lat",
            planner="mbh",
            join_algo="merge",
        )
        # Reference: positional (lon, lat) match counts.
        band_positions = Counter(
            map(tuple, band.cells().coords[:, 1:])
        )
        track_positions = Counter(
            map(tuple, tracks.cells().coords[:, 1:])
        )
        expected = sum(
            band_positions[p] * track_positions[p] for p in band_positions
        )
        assert result.array.n_cells == expected

    def test_ndvi_values_bounded(self):
        band1, band2 = modis_pair(cells=30_000, seed=32)
        cluster = shifted_cluster([band1, band2], n_nodes=4)
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.5)
        result = executor.execute(
            "SELECT (Band2.reflectance - Band1.reflectance) / "
            "(Band2.reflectance + Band1.reflectance) AS ndvi "
            "FROM Band1, Band2 WHERE Band1.time = Band2.time "
            "AND Band1.lon = Band2.lon AND Band1.lat = Band2.lat",
            planner="mbh",
        )
        ndvi = result.cells.attrs["ndvi"]
        assert len(ndvi) > 0
        assert (ndvi >= -1.0 - 1e-9).all()
        assert (ndvi <= 1.0 + 1e-9).all()


class TestFloatKeyJoin:
    def test_float_attribute_equijoin(self):
        """Float keys cannot become dimensions, forcing hash units."""
        rng = np.random.default_rng(33)
        shared = rng.uniform(0, 1, 40)
        values_a = np.concatenate([shared, rng.uniform(2, 3, 60)])
        values_b = np.concatenate([shared, rng.uniform(5, 6, 30)])
        cluster = Cluster(n_nodes=3)
        cluster.create_array(
            "A<v:float64>[i=1,100,10]",
            CellSet(np.arange(1, 101).reshape(-1, 1), {"v": values_a}),
        )
        cluster.create_array(
            "B<w:float64>[j=1,70,10]",
            CellSet(np.arange(1, 71).reshape(-1, 1), {"w": values_b}),
            placement="block",
        )
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.2)
        result = executor.execute(
            "SELECT A.i, B.j INTO M<ai:int64, bj:int64>[] "
            "FROM A, B WHERE A.v = B.w",
            planner="tabu",
        )
        assert result.report.unit_kind == "bucket"
        assert result.array.n_cells == 40


class TestManyNodeExecution:
    def test_twelve_node_cluster(self):
        array_a, array_b = skewed_merge_pair(1.0, cells_per_array=24_000, seed=40)
        cluster = shifted_cluster([array_a, array_b], n_nodes=12)
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.2)
        result = executor.execute(
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j",
            planner="tabu",
        )
        count_a = Counter(map(tuple, array_a.cells().coords))
        count_b = Counter(map(tuple, array_b.cells().coords))
        assert result.array.n_cells == sum(
            count_a[c] * count_b[c] for c in count_a
        )
        # All twelve nodes participated in comparison work.
        assert (result.report.per_node_compare > 0).sum() >= 10
