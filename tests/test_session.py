"""Tests for the high-level Session facade and DDL statements."""

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray
from repro.errors import CatalogError, ParseError
from repro.query.ddl import CreateArray, DropArray, parse_statement
from repro.session import Session


def sample_cells(seed=0, n=300, extent=64):
    gen = np.random.default_rng(seed)
    coords = np.unique(gen.integers(1, extent + 1, size=(n, 2)), axis=0)
    return CellSet(coords, {"v": gen.integers(0, 20, len(coords))})


class TestParseStatement:
    def test_create(self):
        stmt = parse_statement("CREATE ARRAY A<v:int64>[i=1,6,3]")
        assert isinstance(stmt, CreateArray)
        assert stmt.schema.name == "A"

    def test_create_case_insensitive(self):
        stmt = parse_statement("create array B<w:float64>[j=1,8,2];")
        assert isinstance(stmt, CreateArray)

    def test_drop(self):
        stmt = parse_statement("DROP ARRAY A")
        assert isinstance(stmt, DropArray)
        assert stmt.name == "A"

    def test_query_passthrough(self):
        from repro.query.aql import JoinQuery

        stmt = parse_statement("SELECT * FROM A, B WHERE A.i = B.i")
        assert isinstance(stmt, JoinQuery)

    def test_malformed_ddl(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE ARRAY")
        with pytest.raises(ParseError):
            parse_statement("DROP ARRAY 1abc")


class TestSessionLifecycle:
    def test_create_load_query_drop(self):
        session = Session(n_nodes=3, selectivity_hint=0.3)
        session.execute("CREATE ARRAY A<v:int64>[i=1,64,8, j=1,64,8]")
        session.execute("CREATE ARRAY B<v:int64>[i=1,64,8, j=1,64,8]")
        cells_a = sample_cells(seed=1)
        cells_b = sample_cells(seed=2)
        assert session.load("A", cells_a) == len(cells_a)
        assert session.load("B", cells_b) == len(cells_b)
        assert set(session.arrays()) == {"A", "B"}

        result = session.execute(
            "SELECT A.v, B.v FROM A JOIN B ON A.i = B.i AND A.j = B.j",
            planner="mbh",
        )
        shared = {tuple(c) for c in cells_a.coords} & {
            tuple(c) for c in cells_b.coords
        }
        assert result.array.n_cells == len(shared)

        session.execute("DROP ARRAY A")
        assert session.arrays() == ["B"]

    def test_incremental_loads_accumulate(self):
        session = Session(n_nodes=2)
        session.execute("CREATE ARRAY A<v:int64>[i=1,64,8, j=1,64,8]")
        first = sample_cells(seed=3, n=100)
        second = sample_cells(seed=4, n=100)
        session.load("A", first)
        session.load("A", second)
        assert session.array("A").n_cells == len(first) + len(second)

    def test_load_undeclared_array_rejected(self):
        session = Session(n_nodes=2)
        with pytest.raises(CatalogError):
            session.load("Nope", sample_cells())

    def test_filter_statement(self):
        session = Session(n_nodes=2)
        session.create_and_load(
            "A<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(seed=5)
        )
        result = session.execute("SELECT * FROM A WHERE v > 15")
        assert isinstance(result, LocalArray)
        assert (result.cells().attrs["v"] > 15).all()

    def test_afl_surface(self):
        session = Session(n_nodes=2)
        session.create_and_load(
            "A<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(seed=6)
        )
        filtered = session.afl("filter(A, v > 15)")
        assert (filtered.cells().attrs["v"] > 15).all()

    def test_explain_surface(self):
        session = Session(n_nodes=2, selectivity_hint=0.3)
        session.create_and_load(
            "A<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(seed=7)
        )
        session.create_and_load(
            "B<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(seed=8)
        )
        report = session.explain(
            "SELECT A.v FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        assert report.chosen.join_algo == "merge"

    def test_duplicate_create_rejected(self):
        session = Session(n_nodes=2)
        session.execute("CREATE ARRAY A<v:int64>[i=1,8,2]")
        with pytest.raises(CatalogError):
            session.execute("CREATE ARRAY A<v:int64>[i=1,8,2]")


class TestTenantOption:
    """tenant= on Session.execute: validation and cache namespacing."""

    QUERY = "SELECT A.v, B.v FROM A JOIN B ON A.i = B.i AND A.j = B.j"

    def build(self):
        session = Session(n_nodes=2, selectivity_hint=0.3)
        session.create_and_load(
            "A<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(seed=21)
        )
        session.create_and_load(
            "B<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(seed=22)
        )
        return session

    def test_tenant_namespaces_the_plan_cache(self):
        session = self.build()
        first = session.execute(self.QUERY, tenant="acme")
        assert first.report.cache.get("status") == "miss"
        warm = session.execute(self.QUERY, tenant="acme")
        assert warm.report.cache.get("status") == "hit"
        # A different tenant never sees acme's entry.
        other = session.execute(self.QUERY, tenant="rival")
        assert other.report.cache.get("status") == "miss"
        # ...and neither does the tenantless namespace.
        plain = session.execute(self.QUERY)
        assert plain.report.cache.get("status") == "miss"

    def test_per_tenant_counters_accumulate(self):
        session = self.build()
        for _ in range(3):
            session.execute(self.QUERY, tenant="acme")
        session.execute(self.QUERY, tenant="rival")
        counters = session.executor.metrics.snapshot()["counters"]
        assert counters["tenant_cache_misses.acme"] == 1
        assert counters["tenant_cache_hits.acme"] == 2
        assert counters["tenant_cache_misses.rival"] == 1
        assert counters.get("tenant_cache_hits.rival", 0) == 0

    def test_invalid_tenant_rejected(self):
        from repro.errors import ExecutionError

        session = self.build()
        for bad in (123, "", b"acme", ["acme"]):
            with pytest.raises(ExecutionError, match="tenant"):
                session.execute(self.QUERY, tenant=bad)

    def test_unknown_option_message_lists_tenant(self):
        from repro.errors import ExecutionError

        session = self.build()
        with pytest.raises(ExecutionError, match="tenant"):
            session.execute(self.QUERY, tenannt="oops")

    def test_multi_join_honors_tenant_namespaces(self):
        session = self.build()
        session.create_and_load(
            "C<v:int64>[i=1,64,8, j=1,64,8]", sample_cells(seed=23)
        )
        query = (
            "SELECT A.v FROM A, B, C "
            "WHERE A.i = B.i AND A.j = B.j AND B.i = C.i AND B.j = C.j"
        )
        first = session.execute(query, tenant="acme")
        assert first.report.cache.get("status") == "miss"
        warm = session.execute(query, tenant="acme")
        assert warm.report.cache.get("status") == "hit"
        # A different tenant never sees acme's pipeline entry.
        other = session.execute(query, tenant="rival")
        assert other.report.cache.get("status") == "miss"
