"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.adm.cells import CellSet, composite_key
from repro.adm.chunk import build_chunks
from repro.adm.schema import ArraySchema, Attribute, Dimension
from repro.cluster.network import NetworkParams, Transfer, schedule_shuffle
from repro.core.cost_model import AnalyticalCostModel, CostParams
from repro.core.planners import get_planner
from repro.core.slices import SliceStats
from repro.engine.joins import hash_join_match, merge_join_match, nested_loop_match

PARAMS = CostParams(m=1e-6, b=4e-6, p=1e-6, t=5e-6)


# --------------------------------------------------------------- strategies

coords_2d = hnp.arrays(
    np.int64,
    st.tuples(st.integers(0, 60), st.just(2)),
    elements=st.integers(1, 64),
)

value_lists = st.lists(st.integers(-50, 50), min_size=0, max_size=60)

slice_matrices = st.tuples(
    st.integers(1, 24),  # units
    st.integers(1, 6),  # nodes
    st.integers(0, 1_000_000_000),  # seed
)


def stats_from(spec) -> SliceStats:
    n_units, n_nodes, seed = spec
    gen = np.random.default_rng(seed)
    return SliceStats(
        gen.integers(0, 40, size=(n_units, n_nodes)),
        gen.integers(0, 40, size=(n_units, n_nodes)),
    )


# ---------------------------------------------------------------- cell sets


@given(coords_2d)
def test_c_order_sort_is_idempotent_and_ordered(coords):
    cells = CellSet(coords, {"v": np.zeros(len(coords), dtype=np.int64)})
    sorted_cells = cells.sorted_c_order()
    assert sorted_cells.is_c_ordered()
    again = sorted_cells.sorted_c_order()
    np.testing.assert_array_equal(again.coords, sorted_cells.coords)


@given(coords_2d)
def test_sort_preserves_multiset(coords):
    values = np.arange(len(coords), dtype=np.int64)
    cells = CellSet(coords, {"v": values})
    assert cells.sorted_c_order().same_cells(cells)


@given(coords_2d, st.integers(1, 8))
def test_partition_is_a_partition(coords, n_parts):
    cells = CellSet(coords, {"v": np.arange(len(coords), dtype=np.int64)})
    keys = (
        np.abs(coords.sum(axis=1)) % n_parts
        if len(coords)
        else np.zeros(0, dtype=np.int64)
    )
    parts = cells.partition(keys, n_parts)
    assert sum(len(p) for p in parts) == len(cells)
    if len(cells):
        assert CellSet.concat(parts).same_cells(cells)


@given(coords_2d)
def test_chunking_partitions_cells_exactly(coords):
    schema = ArraySchema(
        "P",
        (Dimension("i", 1, 64, 16), Dimension("j", 1, 64, 16)),
        (Attribute("v", "int64"),),
    )
    cells = CellSet(coords, {"v": np.arange(len(coords), dtype=np.int64)})
    chunks = build_chunks(schema, cells)
    assert sum(c.n_cells for c in chunks.values()) == len(cells)
    for chunk in chunks.values():
        chunk.validate_against(schema)
        assert chunk.cells.is_c_ordered()


# ------------------------------------------------------------- join matchers


@given(value_lists, value_lists)
def test_matchers_agree(left_values, right_values):
    left = composite_key([np.asarray(left_values, dtype=np.int64)])
    right = composite_key([np.asarray(right_values, dtype=np.int64)])
    hash_pairs = sorted(zip(*hash_join_match(left, right)))
    nl_pairs = sorted(zip(*nested_loop_match(left, right)))
    assert hash_pairs == nl_pairs

    left_sorted = np.sort(left)
    right_sorted = np.sort(right)
    merge_count = len(merge_join_match(left_sorted, right_sorted)[0])
    assert merge_count == len(hash_pairs)


@given(value_lists, value_lists)
def test_match_count_formula(left_values, right_values):
    """|matches| == Σ_v count_left(v) × count_right(v)."""
    from collections import Counter

    left = composite_key([np.asarray(left_values, dtype=np.int64)])
    right = composite_key([np.asarray(right_values, dtype=np.int64)])
    li, _ = hash_join_match(left, right)
    ca, cb = Counter(left_values), Counter(right_values)
    assert len(li) == sum(ca[v] * cb[v] for v in ca)


@given(value_lists, value_lists)
def test_matched_pairs_actually_match(left_values, right_values):
    left_arr = np.asarray(left_values, dtype=np.int64)
    right_arr = np.asarray(right_values, dtype=np.int64)
    li, ri = hash_join_match(composite_key([left_arr]), composite_key([right_arr]))
    assert (left_arr[li] == right_arr[ri]).all()


# ---------------------------------------------------------------- cost model


@given(slice_matrices, st.integers(0, 1_000_000))
def test_cost_model_matches_naive(spec, assignment_seed):
    stats = stats_from(spec)
    model = AnalyticalCostModel(stats, "hash", PARAMS)
    gen = np.random.default_rng(assignment_seed)
    assignment = gen.integers(0, stats.n_nodes, stats.n_units)
    send, recv, comp = model.node_totals(assignment)
    # Conservation: total sent == total received across the cluster.
    assert send.sum() == recv.sum()
    # Comparison work is conserved regardless of the assignment.
    np.testing.assert_allclose(comp.sum(), model.unit_costs.sum())


@given(slice_matrices)
def test_mbh_minimises_movement(spec):
    stats = stats_from(spec)
    model = AnalyticalCostModel(stats, "merge", PARAMS)
    assignment, _ = get_planner("mbh").assign(model)
    rows = np.arange(stats.n_units)
    local = stats.s_total[rows, assignment]
    np.testing.assert_array_equal(local, stats.s_total.max(axis=1))


@given(slice_matrices)
@settings(deadline=None)
def test_tabu_never_worse_than_mbh(spec):
    stats = stats_from(spec)
    model = AnalyticalCostModel(stats, "hash", PARAMS)
    mbh_cost = model.plan_cost(get_planner("mbh").assign(model)[0])
    tabu_cost = model.plan_cost(get_planner("tabu").assign(model)[0])
    assert tabu_cost.total_seconds <= mbh_cost.total_seconds + 1e-12


# ------------------------------------------------------------------ network


@given(
    st.lists(
        st.tuples(
            st.integers(0, 5), st.integers(0, 5), st.integers(0, 500)
        ).filter(lambda t: t[0] != t[1]),
        max_size=40,
    )
)
def test_shuffle_schedule_invariants(raw_transfers):
    transfers = [Transfer(s, d, n) for s, d, n in raw_transfers]
    params = NetworkParams(bandwidth_cells_per_s=1000.0, latency_s=0.01)
    schedule = schedule_shuffle(transfers, params)
    assert schedule.n_transfers == len(transfers)
    assert schedule.total_cells_moved == sum(t.n_cells for t in transfers)

    # No sender or receiver handles two transfers at once.
    for key in (lambda e: e.transfer.src, lambda e: e.transfer.dst):
        spans: dict = {}
        for event in schedule.events:
            spans.setdefault(key(event), []).append((event.start, event.end))
        for intervals in spans.values():
            intervals.sort()
            for (s1, e1), (s2, _) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9

    # Makespan at least the per-link volume bound.
    if schedule.events:
        heaviest = max(
            max(schedule.cells_sent.values(), default=0),
            max(schedule.cells_received.values(), default=0),
        )
        assert schedule.total_time >= heaviest / 1000.0 - 1e-9
