"""Tests for the sky-survey workload and the join-unit budget."""

import numpy as np
import pytest

from repro.adm import parse_schema
from repro.core.join_schema import MAX_CHUNK_UNITS, infer_join_schema
from repro.adm.stats import Histogram
from repro.query import parse_aql
from repro.workloads import epoch_pair, sky_catalog


class TestSkyCatalog:
    def test_schema_and_size(self):
        catalog = sky_catalog(objects=20_000, seed=0)
        assert catalog.schema.dim_names == ("ra", "dec")
        assert catalog.n_cells == 20_000

    def test_galactic_plane_skew(self):
        flat = sky_catalog(objects=20_000, plane_strength=0.0, seed=1)
        banded = sky_catalog(objects=20_000, plane_strength=12.0, seed=1)
        assert (
            banded.skew_summary(0.05)["top_share"]
            > 1.5 * flat.skew_summary(0.05)["top_share"]
        )

    def test_magnitudes_bounded(self):
        catalog = sky_catalog(objects=5_000, seed=2)
        mags = catalog.cells().attrs["mag"]
        assert mags.min() >= 8.0
        assert mags.max() <= 24.0


class TestEpochPair:
    def test_redetection_rate(self):
        epoch1, epoch2 = epoch_pair(objects=10_000, redetection_rate=0.8, seed=3)
        ids1 = set(epoch1.cells().attrs["obj_id"].tolist())
        ids2 = set(epoch2.cells().attrs["obj_id"].tolist())
        shared = len(ids1 & ids2)
        assert shared == pytest.approx(8_000, rel=0.05)

    def test_shared_objects_share_positions(self):
        epoch1, epoch2 = epoch_pair(objects=5_000, seed=4)
        cells1, cells2 = epoch1.cells(), epoch2.cells()
        pos1 = {
            int(i): tuple(c)
            for c, i in zip(cells1.coords, cells1.attrs["obj_id"])
        }
        for coord, obj in zip(cells2.coords, cells2.attrs["obj_id"]):
            if int(obj) in pos1:
                assert pos1[int(obj)] == tuple(coord)

    def test_magnitude_scatter_small(self):
        epoch1, epoch2 = epoch_pair(
            objects=5_000, magnitude_scatter=0.05, seed=5
        )
        cells1, cells2 = epoch1.cells(), epoch2.cells()
        mag1 = dict(zip(cells1.attrs["obj_id"].tolist(), cells1.attrs["mag"]))
        deltas = [
            abs(mag1[int(obj)] - m)
            for obj, m in zip(cells2.attrs["obj_id"], cells2.attrs["mag"])
            if int(obj) in mag1
        ]
        assert np.median(deltas) < 0.15


class TestJoinUnitBudget:
    def test_mixed_key_grid_bounded(self):
        """A mixed (spatial + attribute) key must not explode the join
        schema's chunk grid past MAX_CHUNK_UNITS."""
        epoch = parse_schema(
            "E<mag:float64, obj_id:int64>[ra=1,360,4, dec=1,180,4]"
        )
        other = epoch.with_name("F")
        query = parse_aql(
            "SELECT E.mag FROM E, F WHERE E.ra = F.ra AND E.dec = F.dec "
            "AND E.obj_id = F.obj_id"
        )
        hist = {
            "E.obj_id": Histogram.from_values(np.arange(0, 400_000, 13)),
            "F.obj_id": Histogram.from_values(np.arange(0, 400_000, 17)),
        }
        schema = infer_join_schema(query, epoch, other, histograms=hist)
        assert schema.chunkable
        assert schema.n_chunks <= MAX_CHUNK_UNITS
        # The copied spatial grid is honoured exactly.
        assert schema.dims[0].chunk_count == 90
        assert schema.dims[1].chunk_count == 45

    def test_single_attr_key_keeps_default_target(self):
        a = parse_schema("A<v:int64>[i=1,128,4]")
        b = parse_schema("B<w:int64>[j=1,128,4]")
        query = parse_aql("SELECT A.i INTO T<i:int64>[] FROM A, B WHERE A.v = B.w")
        hist = {
            "A.v": Histogram.from_values(np.arange(1000)),
            "B.w": Histogram.from_values(np.arange(1000)),
        }
        schema = infer_join_schema(query, a, b, histograms=hist)
        assert 16 <= schema.n_chunks <= 64  # the per-dim default (32)
