"""Tests for the MODIS and AIS data simulacra (Section 6.3 substitutes).

These assert the distributional facts the paper reports about the real
datasets — the facts the experiments actually depend on.
"""

import numpy as np
import pytest

from repro.workloads.ais import ais_tracks
from repro.workloads.modis import modis_band, modis_pair


class TestModis:
    def test_schema(self):
        band = modis_band(cells=30_000, seed=0)
        assert band.schema.dim_names == ("time", "lon", "lat")
        assert band.schema.attr_names == ("reflectance",)
        # 4-degree spatial chunks.
        assert band.schema.dim("lon").chunk_interval == 4
        assert band.schema.dim("lat").chunk_interval == 4

    def test_slight_skew(self):
        """Top 5% of chunks hold ~10% of cells (paper's statistic)."""
        band = modis_band(cells=150_000, seed=1)
        share = band.skew_summary(0.05)["top_share"]
        assert 0.07 <= share <= 0.2

    def test_equator_denser_than_poles(self):
        band = modis_band(cells=150_000, seed=2)
        lat = band.cells().dim_column(2)
        equator = ((lat > 60) & (lat <= 120)).sum()
        poles = ((lat <= 30) | (lat > 150)).sum()
        assert equator > poles

    def test_band_pair_adversarial(self):
        """Corresponding chunks of the two bands are close in size — the
        paper quotes a mean difference of ~1.5% of the mean chunk size."""
        band1, band2 = modis_pair(cells=150_000, seed=3)
        sizes1 = band1.chunk_sizes()
        sizes2 = band2.chunk_sizes()
        common = set(sizes1) & set(sizes2)
        assert len(common) > 1000
        diffs = np.array([abs(sizes1[c] - sizes2[c]) for c in common])
        means = np.array([(sizes1[c] + sizes2[c]) / 2 for c in common])
        assert diffs.sum() / means.sum() < 0.1

    def test_bands_share_sampling_locations(self):
        band1, band2 = modis_pair(cells=50_000, dropout=0.0, seed=4)
        assert band1.n_cells == band2.n_cells
        c1 = {tuple(c) for c in band1.cells().coords}
        c2 = {tuple(c) for c in band2.cells().coords}
        assert c1 == c2

    def test_deterministic(self):
        a = modis_band(cells=20_000, seed=5)
        b = modis_band(cells=20_000, seed=5)
        assert a.cells().same_cells(b.cells())


class TestAis:
    def test_schema(self):
        tracks = ais_tracks(cells=30_000, seed=0)
        assert tracks.schema.attr_names == (
            "ship_id", "course", "speed", "rate_of_turn",
        )
        assert tracks.schema.dim_names == ("time", "lon", "lat")

    def test_severe_beneficial_skew(self):
        """~85% of cells in the top 5% of chunks (paper's statistic)."""
        tracks = ais_tracks(cells=150_000, seed=1)
        share = tracks.skew_summary(0.05)["top_share"]
        assert 0.7 <= share <= 0.95

    def test_far_more_skewed_than_modis(self):
        tracks = ais_tracks(cells=150_000, seed=2)
        band = modis_band(cells=150_000, seed=2)
        assert (
            tracks.skew_summary(0.05)["top_share"]
            > 4 * band.skew_summary(0.05)["top_share"]
        )

    def test_compatible_geospatial_grid_with_modis(self):
        """The AIS x MODIS join requires identical lon/lat dimensions."""
        tracks = ais_tracks(cells=10_000, seed=3)
        band = modis_band(cells=10_000, seed=3)
        assert tracks.schema.dim("lon").same_shape(band.schema.dim("lon"))
        assert tracks.schema.dim("lat").same_shape(band.schema.dim("lat"))

    def test_attribute_ranges(self):
        tracks = ais_tracks(cells=20_000, seed=4)
        cells = tracks.cells()
        assert (cells.attrs["course"] >= 0).all()
        assert (cells.attrs["course"] < 360).all()
        assert (cells.attrs["speed"] >= 0).all()

    def test_requested_cell_count(self):
        assert ais_tracks(cells=12_345, seed=5).n_cells == 12_345
