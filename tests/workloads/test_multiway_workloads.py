"""Chain- and star-schema generators: seeding and fanout invariants.

The multiway generators must be reproducible from their explicit ``rng``
seed alone (never touching numpy's global state), and must engineer
exactly ``fanout`` matches per foreign-key occurrence so pipeline output
sizes stay bounded at every skew level.
"""

from collections import Counter

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.workloads.synthetic import (
    chain_arrays,
    chain_query,
    star_arrays,
    star_query,
)


def array_bytes(array) -> bytes:
    cells = array.cells()
    packed = cells.to_structured(sorted(cells.attrs))
    return np.sort(packed).tobytes()


class TestChainArrays:
    def test_reproducible_from_int_or_generator(self):
        from_int = chain_arrays(3, 0.8, cells_per_array=200, rng=42)
        from_gen = chain_arrays(
            3, 0.8, cells_per_array=200, rng=np.random.default_rng(42)
        )
        for a, b in zip(from_int, from_gen):
            assert array_bytes(a) == array_bytes(b)

    def test_never_touches_global_rng(self):
        np.random.seed(7)
        before = np.random.get_state()[1].copy()
        chain_arrays(3, 1.5, cells_per_array=150, rng=3)
        assert np.array_equal(np.random.get_state()[1], before)

    def test_own_keys_have_exact_fanout_multiplicity(self):
        arrays = chain_arrays(4, 1.0, cells_per_array=240, fanout=3, rng=1)
        for m, array in enumerate(arrays):
            counts = Counter(array.cells().attrs[f"k{m}"].tolist())
            assert set(counts.values()) == {3}

    def test_foreign_keys_stay_in_referenced_domain(self):
        arrays = chain_arrays(3, 2.0, cells_per_array=200, rng=5)
        for m in (0, 1):
            foreign = arrays[m].cells().attrs[f"k{m + 1}"]
            own = arrays[m + 1].cells().attrs[f"k{m + 1}"]
            assert set(foreign.tolist()) <= set(own.tolist())

    def test_skew_concentrates_foreign_keys(self):
        uniform = chain_arrays(3, 0.0, cells_per_array=2000, rng=2)
        skewed = chain_arrays(3, 1.8, cells_per_array=2000, rng=2)
        top = lambda arr: max(
            Counter(arr.cells().attrs["k1"].tolist()).values()
        )
        assert top(skewed[0]) > 3 * top(uniform[0])

    def test_query_matches_schema(self):
        query = chain_query(4)
        assert "FROM T0, T1, T2, T3" in query
        assert "T2.k3 = T3.k3" in query

    def test_too_few_arrays_rejected(self):
        with pytest.raises(SchemaError):
            chain_arrays(2, 1.0, rng=0)


class TestStarArrays:
    def test_reproducible_and_shapes(self):
        first = star_arrays(3, 1.0, fact_cells=300, dim_cells=120, rng=9)
        second = star_arrays(3, 1.0, fact_cells=300, dim_cells=120, rng=9)
        assert len(first) == 4  # fact + 3 dims
        for a, b in zip(first, second):
            assert array_bytes(a) == array_bytes(b)

    def test_dimension_keys_have_exact_fanout(self):
        arrays = star_arrays(2, 0.5, fact_cells=200, dim_cells=120, rng=3)
        for i, dim in enumerate(arrays[1:]):
            counts = Counter(dim.cells().attrs[f"d{i}"].tolist())
            assert set(counts.values()) == {2}

    def test_query_joins_every_dimension(self):
        query = star_query(3)
        for i in range(3):
            assert f"F.d{i} = D{i}.d{i}" in query

    def test_too_few_dimensions_rejected(self):
        with pytest.raises(SchemaError):
            star_arrays(1, 1.0, rng=0)
