"""Unit tests for the synthetic workload generators."""

from collections import Counter

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.workloads.synthetic import (
    allocate_capped,
    selectivity_pair,
    skewed_hash_pair,
    skewed_merge_pair,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(100, 1.3).sum() == pytest.approx(1.0)

    def test_alpha_zero_uniform(self):
        weights = zipf_weights(10, 0.0)
        np.testing.assert_allclose(weights, 0.1)

    def test_higher_alpha_more_concentrated(self):
        flat = np.sort(zipf_weights(100, 0.5))[::-1]
        steep = np.sort(zipf_weights(100, 2.0))[::-1]
        assert steep[0] > flat[0]

    def test_permutation_applied(self):
        gen = np.random.default_rng(0)
        weights = zipf_weights(1000, 1.0, gen)
        assert np.argmax(weights) != 0 or weights[0] != weights.max()

    def test_invalid_inputs(self):
        with pytest.raises(SchemaError):
            zipf_weights(0, 1.0)
        with pytest.raises(SchemaError):
            zipf_weights(10, -1.0)


class TestAllocateCapped:
    def test_respects_capacity(self, rng):
        weights = zipf_weights(20, 2.0)
        capacity = np.full(20, 50)
        counts = allocate_capped(weights, 600, capacity, rng)
        assert (counts <= capacity).all()
        assert counts.sum() == 600

    def test_truncates_when_full(self, rng):
        counts = allocate_capped(
            np.ones(4) / 4, 1000, np.full(4, 10), rng
        )
        assert counts.sum() == 40


class TestSkewedMergePair:
    def test_cell_counts(self):
        a, b = skewed_merge_pair(1.0, cells_per_array=20_000, seed=1)
        assert a.n_cells == 20_000
        assert b.n_cells == 20_000
        assert a.schema.chunk_grid == (32, 32)

    def test_skew_increases_with_alpha(self):
        flat, _ = skewed_merge_pair(0.0, cells_per_array=20_000, seed=1)
        steep, _ = skewed_merge_pair(2.0, cells_per_array=20_000, seed=1)
        assert (
            steep.skew_summary()["top_share"] > flat.skew_summary()["top_share"]
        )

    def test_correlated_pair_shares_placement(self):
        a, b = skewed_merge_pair(
            1.5, cells_per_array=20_000, seed=2, correlated=True
        )
        sizes_a = a.chunk_sizes()
        sizes_b = b.chunk_sizes()
        common = sorted(set(sizes_a) & set(sizes_b))
        va = np.array([sizes_a[c] for c in common], dtype=np.float64)
        vb = np.array([sizes_b[c] for c in common], dtype=np.float64)
        corr = np.corrcoef(va, vb)[0, 1]
        assert corr > 0.9

    def test_uncorrelated_by_default(self):
        a, b = skewed_merge_pair(2.0, cells_per_array=20_000, seed=3)
        sizes_a = a.chunk_sizes()
        sizes_b = b.chunk_sizes()
        top_a = max(sizes_a, key=sizes_a.get)
        top_b = max(sizes_b, key=sizes_b.get)
        assert top_a != top_b  # overwhelmingly likely with 1024 chunks


class TestSkewedHashPair:
    @pytest.mark.parametrize("alpha", [0.0, 1.0, 2.0])
    def test_selectivity_hits_target(self, alpha):
        a, b = skewed_hash_pair(alpha, cells_per_array=30_000, seed=4)
        count_a = Counter(a.cells().attrs["v1"].tolist())
        count_b = Counter(b.cells().attrs["v1"].tolist())
        matches = sum(count_a[v] * count_b[v] for v in count_a)
        target = 0.0001 * (a.n_cells + b.n_cells)
        assert matches >= target * 0.5
        assert matches <= max(target * 20, 100)

    def test_key_frequencies_skew_with_alpha(self):
        flat, _ = skewed_hash_pair(0.0, cells_per_array=30_000, seed=5)
        steep, _ = skewed_hash_pair(2.0, cells_per_array=30_000, seed=5)
        top_flat = Counter(flat.cells().attrs["v1"].tolist()).most_common(1)[0][1]
        top_steep = Counter(steep.cells().attrs["v1"].tolist()).most_common(1)[0][1]
        assert top_steep > 5 * top_flat

    def test_v2_derived_from_v1(self):
        a, _ = skewed_hash_pair(1.0, cells_per_array=5_000, seed=6)
        cells = a.cells()
        np.testing.assert_array_equal(
            cells.attrs["v2"], cells.attrs["v1"] * 7 + 1
        )


class TestSelectivityPair:
    @pytest.mark.parametrize("selectivity", [0.01, 0.1, 0.5, 1.0, 10.0, 100.0])
    def test_output_cardinality(self, selectivity):
        n = 10_000
        a, b = selectivity_pair(selectivity, n_cells=n, seed=7)
        count_a = Counter(a.cells().attrs["v"].tolist())
        count_b = Counter(b.cells().attrs["w"].tolist())
        matches = sum(count_a[v] * count_b[v] for v in count_a)
        assert matches == pytest.approx(selectivity * 2 * n, rel=0.05)

    def test_values_within_domain(self):
        a, b = selectivity_pair(0.1, n_cells=5_000, seed=8)
        assert a.cells().attrs["v"].max() <= 5_000
        assert a.cells().attrs["v"].min() >= 1
        assert b.cells().attrs["w"].max() <= 5_000

    def test_dense_coordinates(self):
        a, _ = selectivity_pair(1.0, n_cells=1_000, seed=9)
        np.testing.assert_array_equal(
            np.sort(a.cells().dim_column(0)), np.arange(1, 1001)
        )
