"""Synthetic-workload seeding: reproducible from the seed alone.

Every Zipf generator must accept an explicit seed (integer or
Generator), never draw from numpy's global RNG, and produce identical
arrays for identical seeds — perturbing the global state between two
builds must not change a single cell.
"""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.workloads.synthetic import (
    skewed_hash_pair,
    skewed_merge_pair,
    zipf_weights,
)


def array_bytes(array) -> bytes:
    cells = array.cells()
    packed = cells.to_structured(sorted(cells.attrs))
    return np.sort(packed).tobytes()


class TestZipfWeights:
    def test_accepts_int_seed_and_matches_generator(self):
        from_int = zipf_weights(64, 1.3, rng=42)
        from_gen = zipf_weights(64, 1.3, rng=np.random.default_rng(42))
        assert np.array_equal(from_int, from_gen)

    def test_unpermuted_without_rng(self):
        weights = zipf_weights(16, 1.0)
        assert np.all(np.diff(weights) <= 0)  # rank order preserved
        assert weights.sum() == pytest.approx(1.0)

    def test_never_touches_global_rng(self):
        np.random.seed(7)
        before = np.random.get_state()[1].copy()
        zipf_weights(128, 1.5, rng=3)
        after = np.random.get_state()[1].copy()
        assert np.array_equal(before, after)

    def test_validation(self):
        with pytest.raises(SchemaError):
            zipf_weights(0, 1.0)
        with pytest.raises(SchemaError):
            zipf_weights(8, -0.1)


class TestGeneratorsReproducible:
    @pytest.mark.parametrize(
        "factory", [skewed_hash_pair, skewed_merge_pair],
        ids=["hash", "merge"],
    )
    def test_same_seed_same_arrays_despite_global_rng(self, factory):
        first = factory(1.2, cells_per_array=3_000, seed=11)
        # Perturb the global RNG between builds: a generator that leaks
        # global draws would produce different arrays here.
        np.random.seed(999)
        np.random.random(1000)
        second = factory(1.2, cells_per_array=3_000, seed=11)
        for a, b in zip(first, second):
            assert array_bytes(a) == array_bytes(b)

    @pytest.mark.parametrize(
        "factory", [skewed_hash_pair, skewed_merge_pair],
        ids=["hash", "merge"],
    )
    def test_different_seeds_differ(self, factory):
        one = factory(1.2, cells_per_array=3_000, seed=1)
        two = factory(1.2, cells_per_array=3_000, seed=2)
        assert any(
            array_bytes(a) != array_bytes(b) for a, b in zip(one, two)
        )
