"""Property test: the multi-join DP is optimal among left-deep orders."""

from itertools import permutations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multijoin import MultiJoinPlanner
from repro.errors import PlanningError
from repro.query import parse_aql

#: A chain query over four arrays: A-B, B-C, C-D.
CHAIN4 = parse_aql(
    "SELECT A.k1, D.k1 FROM A, B, C, D "
    "WHERE A.k1 = B.k1 AND B.k2 = C.k2 AND C.k1 = D.k1"
)

sizes_strategy = st.fixed_dictionaries(
    {name: st.integers(10, 100_000) for name in ("A", "B", "C", "D")}
)
selectivity_strategy = st.fixed_dictionaries(
    {
        frozenset({"A", "B"}): st.floats(1e-5, 2.0),
        frozenset({"B", "C"}): st.floats(1e-5, 2.0),
        frozenset({"C", "D"}): st.floats(1e-5, 2.0),
    }
)


@given(sizes_strategy, selectivity_strategy)
@settings(deadline=None, max_examples=40)
def test_dp_matches_exhaustive_left_deep_minimum(sizes, selectivities):
    planner = MultiJoinPlanner(sizes, selectivities)
    dp_plan = planner.plan(CHAIN4)

    best_exhaustive = float("inf")
    for order in permutations(["A", "B", "C", "D"]):
        try:
            plan = planner.plan_fixed_order(CHAIN4, list(order))
        except PlanningError:
            continue  # disconnected prefix (e.g. A then C)
        best_exhaustive = min(best_exhaustive, plan.total_cost)

    assert dp_plan.total_cost <= best_exhaustive * (1 + 1e-9)
    # And the DP's own order re-costs to the same total.
    recosted = planner.plan_fixed_order(CHAIN4, dp_plan.order)
    assert abs(recosted.total_cost - dp_plan.total_cost) <= 1e-6 * max(
        dp_plan.total_cost, 1.0
    )


@given(sizes_strategy, selectivity_strategy)
@settings(deadline=None, max_examples=40)
def test_step_outputs_follow_paper_convention(sizes, selectivities):
    """Each step's estimate is sel × (n_left + n_right), composed."""
    planner = MultiJoinPlanner(sizes, selectivities)
    plan = planner.plan(CHAIN4)
    cells = float(sizes[plan.order[0]])
    for step in plan.steps:
        n_right = float(sizes[step.array])
        pair_product = 1.0
        placed = set(step.placed)
        for pair, sel in selectivities.items():
            if step.array in pair and (pair - {step.array}) <= placed:
                pair_product *= sel
        expected = pair_product * (cells + n_right)
        assert abs(step.estimated_output - expected) <= 1e-6 * max(expected, 1.0)
        cells = step.estimated_output
