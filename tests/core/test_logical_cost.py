"""Unit tests for the Table-1 operator cost formulas."""

import math

import pytest

from repro.core import logical_cost as lc


class TestTable1Formulas:
    def test_scan_is_free(self):
        assert lc.cost_scan(1_000_000) == 0.0

    def test_redim_matches_table1(self):
        n, c = 1000.0, 10.0
        expected = n + n * math.log(n / c)
        assert lc.cost_redim(n, c) == pytest.approx(expected)

    def test_rechunk_linear(self):
        assert lc.cost_rechunk(1234) == 1234.0

    def test_hash_linear(self):
        assert lc.cost_hash(1234) == 1234.0

    def test_sort_matches_table1(self):
        n, c = 4096.0, 16.0
        assert lc.cost_sort(n, c) == pytest.approx(n * math.log(n / c))

    def test_sort_cheaper_than_redim(self):
        assert lc.cost_sort(1000, 10) < lc.cost_redim(1000, 10)

    def test_zero_cells(self):
        assert lc.cost_sort(0, 4) == 0.0
        assert lc.cost_redim(0, 4) == 0.0

    def test_tiny_chunks_guarded(self):
        # n/c < 1 must not produce a negative log.
        assert lc.cost_sort(4, 100) >= 0.0


class TestCompare:
    def test_linear_algorithms(self):
        assert lc.cost_compare("merge", 100, 200) == 300
        assert lc.cost_compare("hash", 100, 200) == 300

    def test_nested_loop_polynomial(self):
        assert lc.cost_compare("nested_loop", 100, 200) == 20_000

    def test_nested_loop_never_profitable(self):
        """Analytic version of the Section 4/6.1 claim: for any input
        larger than a few cells, the NL compare dominates linear plans
        even after adding the worst-case reorganisation costs."""
        for n in (100, 10_000, 1_000_000):
            linear_worst = (
                lc.cost_redim(n, 32) * 2
                + lc.cost_compare("merge", n, n)
                + lc.cost_redim(2 * n, 32)
            )
            assert lc.cost_compare("nested_loop", n, n) > linear_worst

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            lc.cost_compare("sort_merge", 1, 1)


class TestOutputEstimate:
    def test_paper_convention(self):
        # selectivity 0.1 over n_a + n_b cells
        assert lc.estimate_output_cells(100, 100, 0.1) == pytest.approx(20)

    def test_negative_selectivity_rejected(self):
        with pytest.raises(ValueError):
            lc.estimate_output_cells(1, 1, -0.5)
