"""Vectorized planners vs their scalar reference oracles.

The batched Tabu and MBH paths must be bit-for-bit interchangeable with
the original per-candidate loops: same assignments, same accepted moves,
same evaluation counts, same final costs — across randomized instance
shapes and skew levels. The incremental cost bookkeeping Tabu relies on
(``move_delta`` + ``cost_from_totals``) is checked against full
``plan_cost`` recomputation after every accepted move.
"""

import numpy as np
import pytest

from repro.core.cost_model import AnalyticalCostModel, CostParams
from repro.core.planners.mbh import MinimumBandwidthPlanner
from repro.core.planners.tabu import TabuPlanner
from repro.core.slices import SliceStats

PARAMS = CostParams(m=1e-6, b=4e-6, p=1e-6, t=5e-6)

#: Randomized instance grid: (n_units, n_nodes, alpha, seed). Mixes tiny
#: edge shapes (single node, more nodes than units) with realistic ones.
INSTANCES = [
    (1, 1, 1.0, 0),
    (3, 5, 0.5, 1),
    (16, 4, 0.0, 2),
    (48, 4, 1.2, 3),
    (64, 8, 2.0, 4),
    (96, 12, 0.8, 5),
    (128, 6, 1.5, 6),
]


def random_stats(n_units, n_nodes, alpha, seed):
    gen = np.random.default_rng(seed)
    sizes = (20_000 / np.arange(1, n_units + 1) ** alpha).astype(np.int64) + 1
    left = np.zeros((n_units, n_nodes), dtype=np.int64)
    right = np.zeros((n_units, n_nodes), dtype=np.int64)
    for i in range(n_units):
        left[i] = gen.multinomial(sizes[i], gen.dirichlet(np.ones(n_nodes)))
        right[i] = gen.multinomial(
            max(sizes[i] // 3, 1), gen.dirichlet(np.ones(n_nodes))
        )
    return SliceStats(left, right)


@pytest.mark.parametrize("shape", INSTANCES)
@pytest.mark.parametrize("algorithm", ["hash", "merge"])
@pytest.mark.parametrize("use_tabu_list", [True, False])
class TestTabuOracle:
    def test_identical_to_reference_loop(self, shape, algorithm, use_tabu_list):
        n_units, n_nodes, alpha, seed = shape
        model = AnalyticalCostModel(
            random_stats(n_units, n_nodes, alpha, seed), algorithm, PARAMS
        )
        fast, fast_meta = TabuPlanner(
            use_tabu_list=use_tabu_list, vectorized=True
        ).assign(model)
        slow, slow_meta = TabuPlanner(
            use_tabu_list=use_tabu_list, vectorized=False
        ).assign(model)
        assert np.array_equal(fast, slow)
        assert fast_meta["moves"] == slow_meta["moves"]
        assert fast_meta["evaluations"] == slow_meta["evaluations"]
        assert fast_meta["final_cost"] == slow_meta["final_cost"]


@pytest.mark.parametrize("shape", INSTANCES)
class TestMbhOracle:
    def test_identical_to_reference_loop(self, shape):
        n_units, n_nodes, alpha, seed = shape
        model = AnalyticalCostModel(
            random_stats(n_units, n_nodes, alpha, seed), "hash", PARAMS
        )
        fast, fast_meta = MinimumBandwidthPlanner(vectorized=True).assign(model)
        slow, slow_meta = MinimumBandwidthPlanner(vectorized=False).assign(model)
        assert np.array_equal(fast, slow)
        assert fast_meta["cells_moved"] == slow_meta["cells_moved"]


class TestIncrementalCostParity:
    """``move_delta`` + ``cost_from_totals`` vs full ``plan_cost``."""

    @pytest.mark.parametrize("shape", INSTANCES)
    def test_random_move_walk(self, shape):
        n_units, n_nodes, alpha, seed = shape
        if n_nodes < 2:
            pytest.skip("moves need at least two nodes")
        stats = random_stats(n_units, n_nodes, alpha, seed)
        model = AnalyticalCostModel(stats, "hash", PARAMS)
        gen = np.random.default_rng(seed + 1000)
        assignment = stats.center_of_gravity()
        send, recv, compare = model.node_totals(assignment)
        for _ in range(50):
            unit = int(gen.integers(n_units))
            source = int(assignment[unit])
            target = int(gen.integers(n_nodes))
            if target == source:
                continue
            send, recv, compare = model.move_delta(
                send, recv, compare, unit, source, target
            )
            assignment[unit] = target
            incremental = model.cost_from_totals(send, recv, compare)
            full = model.plan_cost(assignment).total_seconds
            assert incremental == pytest.approx(full, rel=1e-12, abs=1e-15)
            # The running totals themselves must match a fresh rebuild.
            f_send, f_recv, f_compare = model.node_totals(assignment)
            assert np.array_equal(send, f_send)
            assert np.array_equal(recv, f_recv)
            np.testing.assert_allclose(compare, f_compare, rtol=1e-9, atol=1e-12)
