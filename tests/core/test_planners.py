"""Unit tests for the five physical planners (Section 5.2)."""

import numpy as np
import pytest

from repro.core.cost_model import AnalyticalCostModel, CostParams
from repro.core.planners import PLANNER_NAMES, get_planner
from repro.core.planners.coarse import pack_bins
from repro.core.slices import SliceStats
from repro.errors import PlanningError

PARAMS = CostParams(m=1e-6, b=4e-6, p=1e-6, t=5e-6)


def skewed_stats(n_units=48, n_nodes=4, alpha=1.2, seed=0):
    gen = np.random.default_rng(seed)
    sizes = (20_000 / np.arange(1, n_units + 1) ** alpha).astype(np.int64) + 1
    left = np.zeros((n_units, n_nodes), dtype=np.int64)
    right = np.zeros((n_units, n_nodes), dtype=np.int64)
    for i in range(n_units):
        left[i] = gen.multinomial(sizes[i], gen.dirichlet(np.ones(n_nodes)))
        right[i] = gen.multinomial(
            max(sizes[i] // 3, 1), gen.dirichlet(np.ones(n_nodes))
        )
    return SliceStats(left, right)


@pytest.fixture(scope="module")
def model():
    return AnalyticalCostModel(skewed_stats(), "hash", PARAMS)


class TestRegistry:
    def test_all_names(self):
        assert set(PLANNER_NAMES) == {
            "baseline", "ilp", "ilp_coarse", "mbh", "tabu",
        }

    def test_unknown_rejected(self):
        with pytest.raises(PlanningError):
            get_planner("quantum")


class TestAssignmentsAreValid:
    @pytest.mark.parametrize("name", PLANNER_NAMES)
    def test_every_unit_assigned_once(self, name, model):
        kwargs = {"time_budget_s": 2.0} if "ilp" in name else {}
        plan = get_planner(name, **kwargs).plan(model)
        assert plan.assignment.shape == (model.stats.n_units,)
        assert plan.assignment.min() >= 0
        assert plan.assignment.max() < model.stats.n_nodes
        assert plan.plan_seconds >= 0.0


class TestMbh:
    def test_minimises_cells_moved(self, model):
        """No planner can move fewer cells than center-of-gravity
        assignment (Equation 9's optimality claim)."""
        stats = model.stats
        mbh_plan = get_planner("mbh").plan(model)

        def moved(assignment):
            rows = np.arange(stats.n_units)
            local = stats.s_total[rows, assignment]
            return int((stats.unit_totals - local).sum())

        mbh_moved = moved(mbh_plan.assignment)
        gen = np.random.default_rng(0)
        for _ in range(25):
            other = gen.integers(0, stats.n_nodes, stats.n_units)
            assert moved(other) >= mbh_moved

    def test_single_unit_reassignment_never_reduces_movement(self, model):
        stats = model.stats
        assignment = get_planner("mbh").plan(model).assignment
        rows = np.arange(stats.n_units)
        local = stats.s_total[rows, assignment]
        best_possible = stats.s_total.max(axis=1)
        np.testing.assert_array_equal(local, best_possible)


class TestTabu:
    def test_never_worse_than_mbh(self, model):
        mbh_cost = get_planner("mbh").plan(model).cost.total_seconds
        tabu_cost = get_planner("tabu").plan(model).cost.total_seconds
        assert tabu_cost <= mbh_cost + 1e-12

    def test_improves_under_comp_imbalance(self):
        """All units pile on node 0's storage: MBH sends everything to
        node 0; Tabu must spread the comparison load."""
        left = np.zeros((24, 4), dtype=np.int64)
        left[:, 0] = 1000
        left[:, 1:] = 10
        stats = SliceStats(left, left // 2)
        model = AnalyticalCostModel(stats, "hash", PARAMS)
        mbh = get_planner("mbh").plan(model)
        tabu = get_planner("tabu").plan(model)
        assert tabu.cost.compare_seconds < mbh.cost.compare_seconds
        assert tabu.cost.total_seconds < mbh.cost.total_seconds
        assert len(set(tabu.assignment)) > 1

    def test_moves_recorded(self, model):
        plan = get_planner("tabu").plan(model)
        assert plan.meta["moves"] >= 0
        assert plan.meta["final_cost"] == pytest.approx(
            plan.cost.total_seconds
        )


class TestBaseline:
    def test_merge_anchors_to_larger_array(self):
        left = np.diag([100, 200]).astype(np.int64)
        right = np.array([[0, 5], [5, 0]], dtype=np.int64)
        stats = SliceStats(left, right)
        model = AnalyticalCostModel(stats, "merge", PARAMS)
        plan = get_planner("baseline").plan(model)
        # Left is larger: units stay where the left chunks are.
        np.testing.assert_array_equal(plan.assignment, [0, 1])
        assert plan.meta["anchor_side"] == "left"

    def test_merge_falls_back_for_missing_units(self):
        left = np.array([[50, 0], [0, 0]], dtype=np.int64)
        right = np.array([[0, 5], [0, 7]], dtype=np.int64)
        stats = SliceStats(left, right)
        model = AnalyticalCostModel(stats, "merge", PARAMS)
        plan = get_planner("baseline").plan(model)
        assert plan.assignment[1] == 1  # right side's location

    def test_hash_blocks(self):
        stats = skewed_stats(n_units=10, n_nodes=3)
        model = AnalyticalCostModel(stats, "hash", PARAMS)
        plan = get_planner("baseline").plan(model)
        np.testing.assert_array_equal(
            plan.assignment, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]
        )


class TestCoarsePacking:
    def test_pack_respects_bin_budget(self):
        stats = skewed_stats(n_units=100, n_nodes=4, seed=2)
        labels, n_bins = pack_bins(stats, 20)
        assert n_bins <= 20
        assert labels.min() >= 0
        assert labels.max() < n_bins

    def test_bins_share_center_of_gravity(self):
        stats = skewed_stats(n_units=100, n_nodes=4, seed=3)
        labels, n_bins = pack_bins(stats, 20)
        centers = stats.center_of_gravity()
        for bin_id in range(n_bins):
            members = np.flatnonzero(labels == bin_id)
            assert len(set(centers[members])) <= 1

    def test_more_bins_than_units(self):
        stats = skewed_stats(n_units=10, n_nodes=4)
        labels, n_bins = pack_bins(stats, 75)
        assert n_bins <= 75
        assert len(np.unique(labels)) <= n_bins


class TestIlpPlanners:
    def test_ilp_beats_or_matches_baseline(self, model):
        baseline = get_planner("baseline").plan(model).cost.total_seconds
        ilp = get_planner("ilp", time_budget_s=3.0).plan(model)
        assert ilp.cost.total_seconds <= baseline + 1e-9
        assert ilp.meta["status"] in ("optimal", "feasible")

    def test_coarse_runs_within_budget_and_is_sane(self, model):
        plan = get_planner("ilp_coarse", n_bins=20, time_budget_s=2.0).plan(model)
        assert plan.meta["n_bins"] <= 20
        baseline = get_planner("baseline").plan(model).cost.total_seconds
        assert plan.cost.total_seconds <= baseline * 1.5
