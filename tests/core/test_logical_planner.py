"""Unit tests for the Algorithm-1 dynamic-programming logical planner."""

import pytest

from repro.adm import parse_schema
from repro.core.join_schema import infer_join_schema
from repro.core.logical import LogicalPlanner, PlanInputs, validate_plan
from repro.errors import PlanningError
from repro.query import parse_aql


def dd_schema():
    a = parse_schema("A<v1:int64>[i=1,64,8, j=1,64,8]")
    b = parse_schema("B<v1:int64>[i=1,64,8, j=1,64,8]")
    query = parse_aql("SELECT A.v1 - B.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j")
    return infer_join_schema(query, a, b)


def aa_schema():
    a = parse_schema("A<v:int64>[i=1,128,4]")
    b = parse_schema("B<w:int64>[j=1,128,4]")
    query = parse_aql(
        "SELECT * INTO C<i:int64, j:int64>[v=1,128,4] FROM A, B WHERE A.v = B.w"
    )
    return infer_join_schema(query, a, b)


def float_aa_schema():
    a = parse_schema("A<v:float64>[i=1,128,4]")
    b = parse_schema("B<w:float64>[j=1,128,4]")
    query = parse_aql("SELECT A.i INTO T<i:int64>[] FROM A, B WHERE A.v = B.w")
    return infer_join_schema(query, a, b)


INPUTS = PlanInputs(n_alpha=10_000, n_beta=10_000, c_alpha=64, c_beta=64)


class TestValidation:
    def test_merge_requires_ordered_inputs(self):
        schema = aa_schema()
        assert validate_plan("redim", "redim", "merge", "scan", schema)
        assert not validate_plan("rechunk", "redim", "merge", "scan", schema)
        assert not validate_plan("hash", "hash", "merge", "redim", schema)

    def test_unit_spaces_must_match(self):
        schema = aa_schema()
        assert not validate_plan("hash", "redim", "hash", "redim", schema)
        assert not validate_plan("rechunk", "hash", "hash", "redim", schema)

    def test_scan_requires_conformity(self):
        conforming = dd_schema()
        assert validate_plan("scan", "scan", "merge", "scan", conforming)
        nonconforming = aa_schema()
        assert not validate_plan("scan", "redim", "merge", "scan", nonconforming)

    def test_no_scan_out_after_hash_join_with_dims(self):
        schema = aa_schema()  # destination C has a dimension
        assert not validate_plan("hash", "hash", "hash", "scan", schema)
        assert validate_plan("hash", "hash", "hash", "redim", schema)

    def test_sort_out_requires_matching_grid(self):
        schema = aa_schema()  # J grid copied from C: matches
        assert validate_plan("rechunk", "rechunk", "hash", "sort", schema)
        assert not validate_plan("hash", "hash", "hash", "sort", schema)

    def test_dimensionless_destination(self):
        schema = float_aa_schema()
        assert validate_plan("hash", "hash", "hash", "scan", schema)
        assert not validate_plan("hash", "hash", "hash", "sort", schema)
        assert not validate_plan("hash", "hash", "hash", "redim", schema)

    def test_unchunkable_schema_blocks_redim(self):
        schema = float_aa_schema()
        assert not validate_plan("redim", "redim", "merge", "scan", schema)
        assert not validate_plan("rechunk", "rechunk", "hash", "scan", schema)


class TestPlanSelection:
    def test_conforming_dd_join_scans(self):
        planner = LogicalPlanner(dd_schema(), INPUTS)
        best = planner.best_plan()
        assert best.join_algo == "merge"
        assert best.alpha_align == "scan"
        assert best.beta_align == "scan"
        assert best.cost == pytest.approx(
            (INPUTS.n_alpha + INPUTS.n_beta), rel=0.01
        )

    def test_low_selectivity_prefers_hash(self):
        inputs = PlanInputs(10_000, 10_000, 64, 64, selectivity=0.01)
        best = LogicalPlanner(aa_schema(), inputs).best_plan()
        assert best.join_algo == "hash"
        assert best.join_unit_kind == "bucket"

    def test_high_selectivity_prefers_merge(self):
        inputs = PlanInputs(10_000, 10_000, 64, 64, selectivity=100.0)
        best = LogicalPlanner(aa_schema(), inputs).best_plan()
        assert best.join_algo == "merge"
        assert best.alpha_align == "redim"

    def test_nested_loop_never_chosen(self):
        for selectivity in (0.01, 1.0, 100.0):
            inputs = PlanInputs(10_000, 10_000, 64, 64, selectivity=selectivity)
            best = LogicalPlanner(aa_schema(), inputs).best_plan()
            assert best.join_algo != "nested_loop"

    def test_plan_named(self):
        planner = LogicalPlanner(aa_schema(), INPUTS)
        for algo in ("hash", "merge", "nested_loop"):
            assert planner.plan_named(algo).join_algo == algo

    def test_plans_sorted_by_cost(self):
        plans = LogicalPlanner(aa_schema(), INPUTS).enumerate_plans()
        costs = [plan.cost for plan in plans]
        assert costs == sorted(costs)

    def test_distributed_costs_scale(self):
        single = LogicalPlanner(aa_schema(), INPUTS).best_plan()
        spread = LogicalPlanner(
            aa_schema(),
            PlanInputs(10_000, 10_000, 64, 64, n_nodes=4),
        ).best_plan()
        assert spread.cost == pytest.approx(single.cost / 4)
        # Ranking is unchanged by the k divisor.
        assert spread.join_algo == single.join_algo

    def test_float_keys_exclude_merge(self):
        planner = LogicalPlanner(float_aa_schema(), INPUTS)
        with pytest.raises(PlanningError):
            planner.plan_named("merge")
        assert planner.best_plan().join_algo == "hash"


class TestAflRendering:
    def test_paper_fig5_plans(self):
        schema = aa_schema()
        # At low selectivity the out-align difference is negligible and
        # the bucket preference yields the paper's exact Figure 5 plans.
        inputs = PlanInputs(10_000, 10_000, 64, 64, selectivity=0.01)
        planner = LogicalPlanner(schema, inputs)
        merge = planner.plan_named("merge").afl(schema)
        assert merge.startswith("mergeJoin(redim(scan(A)")
        hash_plan = planner.plan_named("hash").afl(schema)
        assert hash_plan.startswith("redim(hashJoin(hash(scan(A)")

    def test_high_selectivity_hash_uses_rechunk(self):
        """At selectivity 1 the out-sort saving beats bucket flexibility:
        the cheapest hash plan is the paper's rechunk + post-join sort."""
        schema = aa_schema()
        plan = LogicalPlanner(schema, INPUTS).plan_named("hash")
        assert plan.alpha_align == "rechunk"
        assert plan.out_align == "sort"
