"""Plan-time unit splitting: tiling, determinism, decline rules.

The splitter's contract: refined unit ids are a pure function of
``(parent unit, key)`` — both sides of a join partition identically —
and each split parent's sub-units exactly tile its row range: every row
lands in exactly one sub-unit whose id lies inside the parent's
contiguous refined-id run. Units it cannot subdivide (single hot key,
below the row floor) are left whole rather than split badly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import CostParams, unit_compare_costs
from repro.core.slices import SliceStats
from repro.core.splitting import plan_unit_split
from repro.errors import PlanningError

PARAMS = CostParams(m=1e-6, b=4e-6, p=1e-6, t=5e-6)


def make_instance(seed, n_units, n_rows, key_space, hot_share):
    """One synthetic two-sided instance: stats + per-side key chunks.

    ``hot_share`` of the rows pile onto unit 0 so the heavy-unit branch
    actually triggers; small ``key_space`` values force duplicate keys
    (including the single-hot-key degenerate case at key_space=1).
    """
    rng = np.random.default_rng(seed)
    chunks = []
    per_unit = []
    for _ in range(2):
        n_hot = int(n_rows * hot_share)
        unit_ids = np.concatenate(
            [
                np.zeros(n_hot, dtype=np.int64),
                rng.integers(0, n_units, n_rows - n_hot),
            ]
        )
        keys = rng.integers(0, key_space, n_rows).astype(np.uint64)
        chunks.append((unit_ids, keys))
        per_unit.append(np.bincount(unit_ids, minlength=n_units))
    stats = SliceStats(per_unit[0][:, None], per_unit[1][:, None])
    return stats, chunks


@st.composite
def instances(draw):
    return make_instance(
        seed=draw(st.integers(0, 2**32 - 1)),
        n_units=draw(st.integers(2, 8)),
        n_rows=draw(st.integers(30, 400)),
        key_space=draw(st.integers(1, 60)),
        hot_share=draw(st.sampled_from([0.3, 0.6, 0.9])),
    )


class TestTilingProperty:
    @settings(max_examples=80, deadline=None)
    @given(instances())
    def test_subunits_exactly_tile_each_parent(self, instance):
        """Every row of a split parent lands in exactly one of its
        contiguous refined ids, and the refined id is monotone in the
        key — the sub-units are a partition of the parent's key range.
        """
        stats, chunks = instance
        plan = plan_unit_split(
            stats, "hash", PARAMS, chunks, threshold=0.5, factor=4, min_rows=1
        )
        if plan is None:
            return  # nothing heavy or nothing cuttable: trivially tiled
        counts = np.diff(np.concatenate((plan.offsets, [plan.n_units])))
        assert int(counts.sum()) == plan.n_units
        assert np.array_equal(
            plan.parent,
            np.repeat(np.arange(stats.n_units, dtype=np.int64), counts),
        )
        assert plan.units_split == sum(counts > 1)
        assert plan.subunits_created == int(counts[counts > 1].sum())
        for unit_ids, keys in chunks:
            refined = plan.remap(unit_ids, keys)
            # Exactly one refined id per row, inside the parent's run.
            assert refined.shape == unit_ids.shape
            assert np.array_equal(plan.parent[refined], unit_ids)
            assert np.all(refined >= plan.offsets[unit_ids])
            assert np.all(refined < plan.offsets[unit_ids] + counts[unit_ids])
            # Within one parent, the refined id is monotone in the key:
            # sorting by key sorts the refined ids too (contiguous
            # sub-unit key ranges, in key order).
            for unit in np.unique(unit_ids):
                unit_keys = keys[unit_ids == unit]
                unit_refined = refined[unit_ids == unit]
                order = np.argsort(unit_keys, kind="stable")
                assert np.all(np.diff(unit_refined[order]) >= 0)

    @settings(max_examples=40, deadline=None)
    @given(instances())
    def test_refined_id_is_pure_function_of_unit_and_key(self, instance):
        """Equal (unit, key) rows — wherever they occur, either side —
        always land in the same sub-unit, so no matching pair is torn
        apart by a split."""
        stats, chunks = instance
        plan = plan_unit_split(
            stats, "hash", PARAMS, chunks, threshold=0.5, factor=4, min_rows=1
        )
        if plan is None:
            return
        all_units = np.concatenate([ids for ids, _ in chunks])
        all_keys = np.concatenate([keys for _, keys in chunks])
        refined = plan.remap(all_units, all_keys)
        seen: dict[tuple[int, int], int] = {}
        for unit, key, sub in zip(all_units, all_keys, refined):
            assert seen.setdefault((int(unit), int(key)), int(sub)) == int(sub)


class TestDeclineRules:
    def test_single_hot_key_unit_declines(self):
        """A unit whose weight is one key value has no interior key
        boundary; the splitter must leave it whole (the run-time
        re-splitter owns that case)."""
        stats, chunks = make_instance(
            seed=1, n_units=4, n_rows=200, key_space=1, hot_share=0.9
        )
        plan = plan_unit_split(
            stats, "hash", PARAMS, chunks, threshold=0.5, factor=8, min_rows=1
        )
        assert plan is None or 0 not in plan.thresholds

    def test_min_rows_floor_respected(self):
        stats, chunks = make_instance(
            seed=2, n_units=4, n_rows=100, key_space=50, hot_share=0.8
        )
        plan = plan_unit_split(
            stats, "hash", PARAMS, chunks, threshold=0.5, factor=8,
            min_rows=10_000,
        )
        assert plan is None

    def test_no_heavy_units_declines(self):
        stats, chunks = make_instance(
            seed=3, n_units=6, n_rows=300, key_space=50, hot_share=0.0
        )
        plan = plan_unit_split(
            stats, "hash", PARAMS, chunks, threshold=1e9, factor=8, min_rows=1
        )
        assert plan is None


class TestUnitCompareCosts:
    def test_merge_and_hash_formulas(self):
        stats, _ = make_instance(
            seed=4, n_units=3, n_rows=90, key_space=20, hot_share=0.5
        )
        left = stats.left_unit_totals
        right = stats.right_unit_totals
        merge = unit_compare_costs(stats, "merge", PARAMS)
        assert np.allclose(merge, PARAMS.m * (left + right))
        hashed = unit_compare_costs(stats, "hash", PARAMS)
        assert np.allclose(
            hashed,
            PARAMS.b * np.minimum(left, right)
            + PARAMS.p * np.maximum(left, right),
        )

    def test_unknown_algorithm_rejected(self):
        stats, _ = make_instance(
            seed=5, n_units=2, n_rows=40, key_space=10, hot_share=0.5
        )
        with pytest.raises(PlanningError):
            unit_compare_costs(stats, "nested_loop", PARAMS)
