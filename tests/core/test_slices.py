"""Unit tests for join units, slice functions, and slice statistics."""

import numpy as np
import pytest

from repro.adm import CellSet, parse_schema
from repro.core.join_schema import infer_join_schema
from repro.core.slices import (
    SliceStats,
    chunk_unit_ids,
    hash_unit_ids,
    key_columns,
    unit_ids_for,
)
from repro.errors import PlanningError
from repro.query import parse_aql


def dd_join_schema():
    a = parse_schema("A<v:int64>[i=1,64,8, j=1,64,8]")
    b = parse_schema("B<w:int64>[i=1,64,8, j=1,64,8]")
    query = parse_aql("SELECT A.v FROM A, B WHERE A.i = B.i AND A.j = B.j")
    return infer_join_schema(query, a, b)


def aa_join_schema(float_keys=False):
    kind = "float64" if float_keys else "int64"
    a = parse_schema(f"A<v:{kind}>[i=1,64,8]")
    b = parse_schema(f"B<w:{kind}>[j=1,64,8]")
    query = parse_aql(
        "SELECT A.i INTO T<i:int64>[] FROM A, B WHERE A.v = B.w"
    )
    return infer_join_schema(query, a, b)


class TestSliceStats:
    def make(self):
        left = np.array([[5, 0], [2, 3], [0, 0]])
        right = np.array([[1, 1], [0, 4], [0, 0]])
        return SliceStats(left, right)

    def test_totals(self):
        stats = self.make()
        np.testing.assert_array_equal(stats.unit_totals, [7, 9, 0])
        np.testing.assert_array_equal(stats.left_unit_totals, [5, 5, 0])
        assert stats.total_cells == 16

    def test_center_of_gravity(self):
        stats = self.make()
        centers = stats.center_of_gravity()
        assert centers[0] == 0  # 6 vs 1
        assert centers[1] == 1  # 2 vs 7

    def test_empty_units_rotate(self):
        stats = SliceStats(np.zeros((4, 2), np.int64), np.zeros((4, 2), np.int64))
        np.testing.assert_array_equal(stats.center_of_gravity(), [0, 1, 0, 1])

    def test_ties_rotate_by_unit(self):
        left = np.full((4, 2), 3, dtype=np.int64)
        stats = SliceStats(left, np.zeros_like(left))
        np.testing.assert_array_equal(stats.center_of_gravity(), [0, 1, 0, 1])

    def test_merged_conserves_cells(self):
        stats = self.make()
        merged = stats.merged(np.array([0, 0, 1]), 2)
        assert merged.total_cells == stats.total_cells
        np.testing.assert_array_equal(merged.s_left[0], [7, 3])

    def test_shape_validation(self):
        with pytest.raises(PlanningError):
            SliceStats(np.zeros((2, 2)), np.zeros((3, 2)))
        with pytest.raises(PlanningError):
            SliceStats(np.zeros(4), np.zeros(4))


class TestChunkUnits:
    def test_dd_units_match_schema_chunks(self):
        schema = dd_join_schema()
        coords = np.array([[1, 1], [8, 8], [9, 1], [64, 64]])
        cells = CellSet(coords, {"v": np.zeros(4, dtype=np.int64)})
        units = chunk_unit_ids(schema, "left", cells, schema.left_schema)
        np.testing.assert_array_equal(units, [0, 0, 8, 63])

    def test_both_sides_agree(self):
        schema = dd_join_schema()
        coords = np.array([[17, 33], [42, 5]])
        left = CellSet(coords, {"v": np.zeros(2, dtype=np.int64)})
        right = CellSet(coords, {"w": np.zeros(2, dtype=np.int64)})
        lu = chunk_unit_ids(schema, "left", left, schema.left_schema)
        ru = chunk_unit_ids(schema, "right", right, schema.right_schema)
        np.testing.assert_array_equal(lu, ru)

    def test_out_of_range_clamped(self):
        """Key values beyond J's range land in the border chunks."""
        a = parse_schema("A<v:int64>[i=1,64,8]")
        b = parse_schema("B<w:int64>[i=1,64,8]")
        query = parse_aql(
            "SELECT A.v INTO C<v:int64>[i=1,32,8] FROM A, B WHERE A.i = B.i"
        )
        schema = infer_join_schema(query, a, b)
        coords = np.array([[1], [64]])
        cells = CellSet(coords, {"v": np.zeros(2, dtype=np.int64)})
        units = chunk_unit_ids(schema, "left", cells, a)
        assert units.min() >= 0
        assert units.max() < schema.n_chunks

    def test_unchunkable_rejected(self):
        schema = aa_join_schema(float_keys=True)
        cells = CellSet(np.array([[1]]), {"v": np.array([1.5])})
        with pytest.raises(PlanningError):
            chunk_unit_ids(schema, "left", cells, schema.left_schema)


class TestHashUnits:
    def test_matching_values_share_buckets(self, rng):
        schema = aa_join_schema()
        values = rng.integers(0, 1000, 200)
        left = CellSet(
            np.arange(1, 201).reshape(-1, 1) % 64 + 1, {"v": values}
        )
        right = CellSet(
            np.arange(1, 201).reshape(-1, 1) % 64 + 1, {"w": values}
        )
        lu = hash_unit_ids(schema, "left", left, schema.left_schema, 64)
        ru = hash_unit_ids(schema, "right", right, schema.right_schema, 64)
        np.testing.assert_array_equal(lu, ru)

    def test_buckets_in_range(self, rng):
        schema = aa_join_schema()
        cells = CellSet(
            np.ones((500, 1), dtype=np.int64),
            {"v": rng.integers(-(10**9), 10**9, 500)},
        )
        units = hash_unit_ids(schema, "left", cells, schema.left_schema, 37)
        assert units.min() >= 0
        assert units.max() < 37

    def test_buckets_spread(self, rng):
        schema = aa_join_schema()
        cells = CellSet(
            np.ones((2000, 1), dtype=np.int64),
            {"v": np.arange(2000)},
        )
        units = hash_unit_ids(schema, "left", cells, schema.left_schema, 16)
        counts = np.bincount(units, minlength=16)
        assert counts.min() > 0
        assert counts.max() < 2 * counts.mean()

    def test_float_int_cross_type_keys_agree(self):
        """An int column joined against a float column must hash equal
        values identically (both promoted to float64)."""
        a = parse_schema("A<v:int64>[i=1,8,4]")
        b = parse_schema("B<w:float64>[j=1,8,4]")
        query = parse_aql("SELECT A.i INTO T<i:int64>[] FROM A, B WHERE A.v = B.w")
        schema = infer_join_schema(query, a, b)
        left = CellSet(np.ones((3, 1), np.int64), {"v": np.array([1, 2, 3])})
        right = CellSet(np.ones((3, 1), np.int64), {"w": np.array([1.0, 2.0, 3.0])})
        lu = hash_unit_ids(schema, "left", left, a, 16)
        ru = hash_unit_ids(schema, "right", right, b, 16)
        np.testing.assert_array_equal(lu, ru)

    def test_invalid_bucket_count(self):
        schema = aa_join_schema()
        cells = CellSet(np.ones((1, 1), np.int64), {"v": np.array([1])})
        with pytest.raises(PlanningError):
            hash_unit_ids(schema, "left", cells, schema.left_schema, 0)


class TestDispatch:
    def test_unit_ids_for(self):
        schema = dd_join_schema()
        cells = CellSet(np.array([[1, 1]]), {"v": np.array([0])})
        chunked = unit_ids_for(schema, "left", cells, schema.left_schema, "chunk")
        assert chunked[0] == 0
        bucketed = unit_ids_for(
            schema, "left", cells, schema.left_schema, "bucket", n_buckets=8
        )
        assert 0 <= bucketed[0] < 8

    def test_bucket_requires_count(self):
        schema = dd_join_schema()
        cells = CellSet(np.array([[1, 1]]), {"v": np.array([0])})
        with pytest.raises(PlanningError):
            unit_ids_for(schema, "left", cells, schema.left_schema, "bucket")

    def test_unknown_kind(self):
        schema = dd_join_schema()
        cells = CellSet(np.array([[1, 1]]), {"v": np.array([0])})
        with pytest.raises(PlanningError):
            unit_ids_for(schema, "left", cells, schema.left_schema, "tile")


class TestKeyColumns:
    def test_dimension_keys_extracted(self):
        schema = dd_join_schema()
        coords = np.array([[3, 7], [9, 2]])
        cells = CellSet(coords, {"v": np.array([5, 6])})
        columns = key_columns(schema, "left", cells, schema.left_schema)
        np.testing.assert_array_equal(columns[0], [3, 9])
        np.testing.assert_array_equal(columns[1], [7, 2])

    def test_attribute_keys_extracted(self):
        schema = aa_join_schema()
        cells = CellSet(np.array([[1], [2]]), {"v": np.array([10, 20])})
        columns = key_columns(schema, "left", cells, schema.left_schema)
        np.testing.assert_array_equal(columns[0], [10, 20])
