"""Unit tests for join schema inference (Section 4)."""

import numpy as np
import pytest

from repro.adm import Histogram, parse_schema
from repro.core.join_schema import default_destination, infer_join_schema
from repro.errors import PlanningError
from repro.query import parse_aql
from repro.query.predicates import PredicateKind

DD_A = parse_schema("A<v1:int64, v2:int64>[i=1,64,2, j=1,64,2]")
DD_B = parse_schema("B<v1:int64, v2:int64>[i=1,64,2, j=1,64,2]")


class TestDimensionDimension:
    def test_conforming_dd_join(self):
        query = parse_aql(
            "SELECT A.v1 - B.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        schema = infer_join_schema(query, DD_A, DD_B)
        assert schema.kind == PredicateKind.DIM_DIM
        assert schema.chunkable
        assert [d.name for d in schema.dims] == ["i", "j"]
        assert schema.conforms("left")
        assert schema.conforms("right")

    def test_union_range_and_max_interval(self):
        wide_b = parse_schema("B<v1:int64, v2:int64>[i=1,128,4, j=1,64,2]")
        query = parse_aql("SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j")
        schema = infer_join_schema(query, DD_A, wide_b)
        dim_i = schema.dims[0]
        assert (dim_i.start, dim_i.end) == (1, 128)
        assert dim_i.chunk_interval == 4
        # The widened grid equals B's own grid, so B scans while A must
        # be reorganised.
        assert not schema.conforms("left")
        assert schema.conforms("right")

    def test_partial_dimension_join(self):
        """Joining on a subset of dims (the AIS x MODIS query)."""
        modis = parse_schema(
            "M<r:float64>[time=1,7,7, lon=1,360,4, lat=1,180,4]"
        )
        ais = parse_schema(
            "S<ship:int64>[time=1,365,365, lon=1,360,4, lat=1,180,4]"
        )
        query = parse_aql(
            "SELECT M.r, S.ship FROM M, S WHERE M.lon = S.lon AND M.lat = S.lat"
        )
        schema = infer_join_schema(query, modis, ais)
        assert [d.name for d in schema.dims] == ["lon", "lat"]
        # Extra time dimension means neither side's chunks align with J.
        assert not schema.conforms("left")
        assert not schema.conforms("right")


class TestAttributeAttribute:
    def test_int_keys_chunkable_via_histogram(self):
        a = parse_schema("A<v:int64>[i=1,128,4]")
        b = parse_schema("B<w:int64>[j=1,128,4]")
        query = parse_aql("SELECT * FROM A, B WHERE A.v = B.w")
        hist = {
            "A.v": Histogram.from_values(np.arange(0, 1000)),
            "B.w": Histogram.from_values(np.arange(500, 1500)),
        }
        schema = infer_join_schema(query, a, b, histograms=hist)
        assert schema.chunkable
        assert schema.dims[0].start <= 0
        assert schema.dims[0].end >= 1499

    def test_float_keys_not_chunkable(self):
        a = parse_schema("A<v:float64>[i=1,128,4]")
        b = parse_schema("B<w:float64>[j=1,128,4]")
        query = parse_aql("SELECT A.i INTO T<i:int64>[] FROM A, B WHERE A.v = B.w")
        schema = infer_join_schema(query, a, b)
        assert not schema.chunkable

    def test_destination_dim_shape_copied(self):
        a = parse_schema("A<v:int64>[i=1,128,4]")
        b = parse_schema("B<w:int64>[j=1,128,4]")
        query = parse_aql(
            "SELECT * INTO C<i:int64, j:int64>[v=1,128,4] "
            "FROM A, B WHERE A.v = B.w"
        )
        schema = infer_join_schema(query, a, b)
        assert schema.dims[0].same_shape(query.into_schema.dims[0])
        assert schema.grid_matches_destination()

    def test_no_stats_no_destination_falls_to_hash(self):
        a = parse_schema("A<v:int64>[i=1,128,4]")
        b = parse_schema("B<w:int64>[j=1,128,4]")
        query = parse_aql("SELECT A.i INTO T<i:int64>[] FROM A, B WHERE A.v = B.w")
        schema = infer_join_schema(query, a, b)
        assert not schema.chunkable


class TestCarriedFields:
    def test_aa_join_carries_source_dims(self):
        a = parse_schema("A<v:int64>[i=1,128,4]")
        b = parse_schema("B<w:int64>[j=1,128,4]")
        query = parse_aql(
            "SELECT * INTO C<i:int64, j:int64>[v=1,128,4] "
            "FROM A, B WHERE A.v = B.w"
        )
        schema = infer_join_schema(query, a, b)
        assert schema.left_carry == ("i",)
        assert schema.right_carry == ("j",)

    def test_key_attributes_not_carried_twice(self):
        query = parse_aql(
            "SELECT A.v1 - B.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        schema = infer_join_schema(query, DD_A, DD_B)
        assert "i" not in schema.left_carry
        assert schema.left_carry == ("v1",)
        assert schema.right_carry == ("v1",)

    def test_select_star_dd_carries_all_attrs(self):
        query = parse_aql("SELECT * FROM A, B WHERE A.i = B.i AND A.j = B.j")
        schema = infer_join_schema(query, DD_A, DD_B)
        assert set(schema.left_carry) == {"v1", "v2"}
        assert set(schema.right_carry) == {"v1", "v2"}

    def test_unknown_qualifier_rejected(self):
        query = parse_aql("SELECT Z.v1 FROM A, B WHERE A.i = B.i")
        with pytest.raises(PlanningError):
            infer_join_schema(query, DD_A, DD_B)


class TestDefaultDestination:
    def test_equation3_natural_join(self):
        query = parse_aql("SELECT * FROM A, B WHERE A.i = B.i AND A.j = B.j")
        dest = default_destination(query, DD_A, DD_B)
        assert dest.dim_names == ("i", "j")
        # B's v1/v2 collide with A's and get prefixed.
        assert set(dest.attr_names) == {"v1", "v2", "B_v1", "B_v2"}

    def test_predicate_attrs_collapse(self):
        a = parse_schema("A<v:int64>[i=1,8,2]")
        b = parse_schema("B<w:int64, extra:float64>[j=1,8,2]")
        query = parse_aql("SELECT * FROM A, B WHERE A.v = B.w")
        dest = default_destination(query, a, b)
        assert "w" not in dest.attr_names
        assert "extra" in dest.attr_names
