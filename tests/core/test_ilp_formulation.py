"""Tests for the Equation 10-12 MILP construction."""

import numpy as np
import pytest

from repro.core.cost_model import AnalyticalCostModel, CostParams
from repro.core.planners.ilp import assignment_to_vector, build_ilp
from repro.core.slices import SliceStats

PARAMS = CostParams(m=1e-6, b=4e-6, p=1e-6, t=5e-6)


def small_stats(seed=0, n=10, k=3):
    gen = np.random.default_rng(seed)
    return SliceStats(
        gen.integers(0, 30, size=(n, k)), gen.integers(0, 30, size=(n, k))
    )


class TestBuildIlp:
    def test_dimensions(self):
        stats = small_stats()
        model = AnalyticalCostModel(stats, "merge", PARAMS)
        problem = build_ilp(model)
        n, k = stats.n_units, stats.n_nodes
        assert problem.n_vars == n * k + 2  # x variables plus d and g
        assert problem.a_eq.shape == (n, problem.n_vars)  # Equation 4
        assert problem.a_ub.shape == (3 * k, problem.n_vars)  # Eqs 10-12
        assert len(problem.integrality) == n * k

    def test_objective_is_d_plus_g(self):
        stats = small_stats()
        problem = build_ilp(AnalyticalCostModel(stats, "hash", PARAMS))
        n_x = stats.n_units * stats.n_nodes
        np.testing.assert_array_equal(problem.c[:n_x], 0.0)
        np.testing.assert_array_equal(problem.c[n_x:], 1.0)

    @pytest.mark.parametrize("algorithm", ["merge", "hash"])
    def test_assignment_vector_is_feasible(self, algorithm, rng):
        stats = small_stats(seed=2)
        model = AnalyticalCostModel(stats, algorithm, PARAMS)
        problem = build_ilp(model)
        for _ in range(10):
            assignment = rng.integers(0, stats.n_nodes, stats.n_units)
            vector = assignment_to_vector(model, assignment)
            assert problem.check_feasible(vector)

    def test_vector_objective_matches_cost_model(self, rng):
        """d + g of the lifted vector equals the Equation-8 plan cost."""
        stats = small_stats(seed=3)
        model = AnalyticalCostModel(stats, "hash", PARAMS)
        problem = build_ilp(model)
        assignment = rng.integers(0, stats.n_nodes, stats.n_units)
        vector = assignment_to_vector(model, assignment)
        objective = float(problem.c @ vector)
        assert objective == pytest.approx(
            model.plan_cost(assignment).total_seconds
        )

    def test_tightened_d_g_infeasible(self, rng):
        """Shrinking d below the true alignment cost violates Eq 10/11."""
        stats = small_stats(seed=4)
        model = AnalyticalCostModel(stats, "merge", PARAMS)
        problem = build_ilp(model)
        assignment = rng.integers(0, stats.n_nodes, stats.n_units)
        vector = assignment_to_vector(model, assignment)
        d_index = stats.n_units * stats.n_nodes
        if vector[d_index] > 0:
            vector[d_index] *= 0.5
            assert not problem.check_feasible(vector)

    def test_lp_bound_below_any_assignment(self, rng):
        from scipy.optimize import linprog

        stats = small_stats(seed=5)
        model = AnalyticalCostModel(stats, "hash", PARAMS)
        problem = build_ilp(model)
        relaxed = linprog(
            problem.c,
            A_ub=problem.a_ub,
            b_ub=problem.b_ub,
            A_eq=problem.a_eq,
            b_eq=problem.b_eq,
            bounds=problem.bounds(),
            method="highs",
        )
        assert relaxed.success
        for _ in range(20):
            assignment = rng.integers(0, stats.n_nodes, stats.n_units)
            assert (
                relaxed.fun
                <= model.plan_cost(assignment).total_seconds + 1e-9
            )
