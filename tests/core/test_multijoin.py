"""Unit tests for the multi-join ordering planner."""

import pytest

from repro.core.multijoin import MultiJoinPlanner, predicates_between
from repro.errors import PlanningError
from repro.query import parse_aql

CHAIN = parse_aql(
    "SELECT A.k1, C.k2 FROM A, B, C WHERE A.k1 = B.k1 AND B.k2 = C.k2"
)


def planner(sizes=None, sels=None):
    sizes = sizes or {"A": 10_000, "B": 100, "C": 10_000}
    sels = sels or {
        frozenset({"A", "B"}): 0.01,
        frozenset({"B", "C"}): 0.01,
    }
    return MultiJoinPlanner(sizes, sels)


class TestPredicatesBetween:
    def test_orientation(self):
        preds = predicates_between(CHAIN, {"C"}, "B")
        assert len(preds) == 1
        # Placed side on the left, regardless of how the query wrote it.
        assert preds[0].left.array == "C"
        assert preds[0].right.array == "B"

    def test_no_link(self):
        assert predicates_between(CHAIN, {"A"}, "C") == ()


class TestOrdering:
    def test_chain_starts_with_selective_pair(self):
        """Both A⋈B and B⋈C are symmetric; either is fine, but C (or A)
        must come last — A⋈C has no predicate."""
        plan = planner().plan(CHAIN)
        assert set(plan.order[:2]) in ({"A", "B"}, {"B", "C"})
        assert len(plan.steps) == 2
        assert plan.total_cost > 0

    def test_small_selective_join_first(self):
        """A tiny, highly selective pair should be joined first."""
        sizes = {"A": 50_000, "B": 200, "C": 50_000}
        sels = {
            frozenset({"A", "B"}): 0.0001,  # tiny output
            frozenset({"B", "C"}): 0.4,     # large output
        }
        plan = planner(sizes, sels).plan(CHAIN)
        first = plan.steps[0]
        assert {first.placed[0], first.array} == {"A", "B"}

    def test_star_query(self):
        star = parse_aql(
            "SELECT A.k1, D.k2 FROM A, B, C, D "
            "WHERE A.k1 = B.k1 AND A.k2 = C.k1 AND A.k1 = D.k1"
        )
        sizes = {"A": 1000, "B": 100, "C": 100_000, "D": 10}
        sels = {
            frozenset({"A", "B"}): 0.05,
            frozenset({"A", "C"}): 0.05,
            frozenset({"A", "D"}): 0.05,
        }
        plan = MultiJoinPlanner(sizes, sels).plan(star)
        assert len(plan.steps) == 3
        # The giant C should be joined last.
        assert plan.order[-1] == "C"

    def test_disconnected_rejected(self):
        query = parse_aql(
            "SELECT A.k1, C.k1 FROM A, B, C WHERE A.k1 = B.k1 AND A.k2 = B.k2"
        )
        with pytest.raises(PlanningError):
            planner().plan(query)

    def test_missing_sizes_rejected(self):
        bad = MultiJoinPlanner({"A": 10}, {})
        with pytest.raises(PlanningError):
            bad.plan(CHAIN)


class TestFixedOrder:
    def test_dp_never_worse_than_fixed(self):
        plans = planner()
        best = plans.plan(CHAIN)
        for order in (["A", "B", "C"], ["C", "B", "A"], ["B", "A", "C"]):
            fixed = plans.plan_fixed_order(CHAIN, order)
            assert best.total_cost <= fixed.total_cost + 1e-9

    def test_invalid_order_rejected(self):
        with pytest.raises(PlanningError):
            planner().plan_fixed_order(CHAIN, ["A", "C", "B"])  # A-C: no pred
        with pytest.raises(PlanningError):
            planner().plan_fixed_order(CHAIN, ["A", "B"])  # incomplete

    def test_describe(self):
        plan = planner().plan(CHAIN)
        text = plan.describe()
        assert "join order" in text
        assert "⋈" in text
