"""Unit tests for the analytical physical cost model (Equations 4-8)."""

import numpy as np
import pytest

from repro.core.cost_model import AnalyticalCostModel, CostParams
from repro.core.slices import SliceStats
from repro.errors import PlanningError

PARAMS = CostParams(m=1.0, b=4.0, p=1.0, t=0.5)


def random_stats(n_units=40, n_nodes=5, seed=0):
    gen = np.random.default_rng(seed)
    return SliceStats(
        gen.integers(0, 50, size=(n_units, n_nodes)),
        gen.integers(0, 50, size=(n_units, n_nodes)),
    )


def naive_node_totals(stats, unit_costs, assignment):
    """Literal transcription of Equations 5-7 for cross-checking."""
    n, k = stats.n_units, stats.n_nodes
    s_total = stats.s_total
    totals = stats.unit_totals
    send = np.zeros(k)
    recv = np.zeros(k)
    comp = np.zeros(k)
    for j in range(k):
        for i in range(n):
            if assignment[i] != j:
                send[j] += s_total[i, j]
            else:
                recv[j] += totals[i] - s_total[i, j]
                comp[j] += unit_costs[i]
    return send, recv, comp


class TestUnitCosts:
    def test_merge_cost(self):
        stats = SliceStats(np.array([[10, 0]]), np.array([[0, 6]]))
        model = AnalyticalCostModel(stats, "merge", PARAMS)
        assert model.unit_costs[0] == pytest.approx(16.0)

    def test_hash_build_probe_split(self):
        stats = SliceStats(np.array([[10, 0]]), np.array([[0, 6]]))
        model = AnalyticalCostModel(stats, "hash", PARAMS)
        # build the smaller side (6 cells), probe the larger (10).
        assert model.unit_costs[0] == pytest.approx(4.0 * 6 + 1.0 * 10)

    def test_nested_loop_rejected(self):
        with pytest.raises(PlanningError):
            AnalyticalCostModel(random_stats(), "nested_loop", PARAMS)


class TestNodeTotals:
    @pytest.mark.parametrize("algorithm", ["merge", "hash"])
    def test_matches_naive_equations(self, algorithm, rng):
        stats = random_stats(seed=3)
        model = AnalyticalCostModel(stats, algorithm, PARAMS)
        assignment = rng.integers(0, stats.n_nodes, stats.n_units)
        send, recv, comp = model.node_totals(assignment)
        n_send, n_recv, n_comp = naive_node_totals(
            stats, model.unit_costs, assignment
        )
        np.testing.assert_array_equal(send, n_send)
        np.testing.assert_array_equal(recv, n_recv)
        np.testing.assert_allclose(comp, n_comp)

    def test_plan_cost_is_equation8(self, rng):
        stats = random_stats(seed=5)
        model = AnalyticalCostModel(stats, "merge", PARAMS)
        assignment = rng.integers(0, stats.n_nodes, stats.n_units)
        cost = model.plan_cost(assignment)
        send, recv, comp = model.node_totals(assignment)
        expected = max(send.max(), recv.max()) * PARAMS.t + comp.max()
        assert cost.total_seconds == pytest.approx(expected)

    def test_all_local_assignment_moves_nothing(self):
        # One unit per node, each stored wholly where it is assigned.
        left = np.diag([10, 20, 30]).astype(np.int64)
        stats = SliceStats(left, np.zeros_like(left))
        model = AnalyticalCostModel(stats, "merge", PARAMS)
        cost = model.plan_cost(np.array([0, 1, 2]))
        assert cost.send_cells == 0
        assert cost.recv_cells == 0

    def test_assignment_validation(self):
        stats = random_stats()
        model = AnalyticalCostModel(stats, "merge", PARAMS)
        with pytest.raises(PlanningError):
            model.plan_cost(np.zeros(3, dtype=np.int64))
        with pytest.raises(PlanningError):
            model.plan_cost(np.full(stats.n_units, 99))


class TestIncrementalMoves:
    def test_move_delta_matches_rebuild(self, rng):
        stats = random_stats(seed=7)
        model = AnalyticalCostModel(stats, "hash", PARAMS)
        assignment = rng.integers(0, stats.n_nodes, stats.n_units)
        send, recv, comp = model.node_totals(assignment)
        for _ in range(20):
            unit = int(rng.integers(0, stats.n_units))
            source = int(assignment[unit])
            target = int((source + 1 + rng.integers(0, stats.n_nodes - 1))
                         % stats.n_nodes)
            new_send, new_recv, new_comp = model.move_delta(
                send, recv, comp, unit, source, target
            )
            assignment[unit] = target
            r_send, r_recv, r_comp = model.node_totals(assignment)
            np.testing.assert_array_equal(new_send, r_send)
            np.testing.assert_array_equal(new_recv, r_recv)
            np.testing.assert_allclose(new_comp, r_comp)
            send, recv, comp = new_send, new_recv, new_comp

    def test_cost_from_totals_consistent(self, rng):
        stats = random_stats(seed=11)
        model = AnalyticalCostModel(stats, "merge", PARAMS)
        assignment = rng.integers(0, stats.n_nodes, stats.n_units)
        send, recv, comp = model.node_totals(assignment)
        assert model.cost_from_totals(send, recv, comp) == pytest.approx(
            model.plan_cost(assignment).total_seconds
        )


class TestCostParams:
    def test_positive_required(self):
        with pytest.raises(PlanningError):
            CostParams(m=0.0)

    def test_with_bandwidth(self):
        params = CostParams().with_bandwidth(1_000_000.0)
        assert params.t == pytest.approx(1e-6)
