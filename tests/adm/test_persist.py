"""Tests for whole-array persistence."""

import numpy as np
import pytest

from repro import Session
from repro.adm import CellSet, LocalArray, parse_schema
from repro.adm.persist import load_array, save_array
from repro.errors import SchemaError
from repro.workloads import ais_tracks, skewed_merge_pair


class TestRoundtrip:
    def test_figure1_array(self, figure1_array, tmp_path):
        path = tmp_path / "fig1.adm"
        written = save_array(figure1_array, path)
        assert written == path.stat().st_size
        restored = load_array(path)
        assert restored.schema == figure1_array.schema
        assert restored.cells().same_cells(figure1_array.cells())

    def test_workload_array(self, tmp_path):
        array, _ = skewed_merge_pair(1.0, cells_per_array=15_000, seed=3)
        path = tmp_path / "skewed.adm"
        save_array(array, path)
        restored = load_array(path)
        assert restored.n_cells == array.n_cells
        assert restored.chunk_sizes() == array.chunk_sizes()
        assert restored.cells().same_cells(array.cells())

    def test_float_attributes(self, tmp_path):
        tracks = ais_tracks(cells=5_000, seed=4)
        path = tmp_path / "ais.adm"
        save_array(tracks, path)
        restored = load_array(path)
        assert restored.cells().same_cells(tracks.cells())
        assert restored.schema.attr("speed").type_name == "float64"

    def test_empty_array(self, tmp_path):
        schema = parse_schema("E<v:int64>[i=1,8,4]")
        path = tmp_path / "empty.adm"
        save_array(LocalArray.empty(schema), path)
        restored = load_array(path)
        assert restored.n_cells == 0
        assert restored.schema == schema

    def test_compression_beats_raw_for_dense_chunks(self, tmp_path):
        """Dense, C-ordered chunks RLE their coordinate deltas away;
        sparse random data stays near raw size (plus per-chunk headers)."""
        coords = np.stack(
            np.meshgrid(np.arange(1, 65), np.arange(1, 65), indexing="ij"),
            axis=-1,
        ).reshape(-1, 2)
        schema = parse_schema("D<v:int64>[i=1,64,32, j=1,64,32]")
        dense = LocalArray.from_cells(
            schema, CellSet(coords, {"v": np.zeros(len(coords), dtype=np.int64)})
        )
        path = tmp_path / "dense.adm"
        written = save_array(dense, path)
        assert written < dense.cells().nbytes / 3


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.adm"
        path.write_bytes(b"not an array file at all")
        with pytest.raises(SchemaError):
            load_array(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "tiny.adm"
        path.write_bytes(b"\x00\x01")
        with pytest.raises(SchemaError):
            load_array(path)


class TestSessionSurface:
    def test_save_restore_rename(self, tmp_path):
        rng = np.random.default_rng(6)
        session = Session(n_nodes=2)
        coords = np.unique(rng.integers(1, 33, size=(200, 2)), axis=0)
        session.create_and_load(
            "A<v:int64>[i=1,32,8, j=1,32,8]",
            CellSet(coords, {"v": rng.integers(0, 9, len(coords))}),
        )
        path = tmp_path / "a.adm"
        session.save("A", path)
        name = session.restore(path, name="A2", placement="block")
        assert name == "A2"
        assert session.array("A2").cells().same_cells(session.array("A").cells())

    def test_restored_array_joins(self, tmp_path):
        rng = np.random.default_rng(7)
        session = Session(n_nodes=2, selectivity_hint=0.5)
        coords = np.unique(rng.integers(1, 33, size=(300, 2)), axis=0)
        session.create_and_load(
            "A<v:int64>[i=1,32,8, j=1,32,8]",
            CellSet(coords, {"v": rng.integers(0, 9, len(coords))}),
        )
        path = tmp_path / "a.adm"
        session.save("A", path)
        session.restore(path, name="B")
        result = session.execute(
            "SELECT A.v FROM A, B WHERE A.i = B.i AND A.j = B.j",
            planner="mbh",
        )
        assert result.array.n_cells == len(coords)
