"""Unit tests for the schema-literal parser."""

import pytest

from repro.adm.parser import parse_attribute, parse_dimension, parse_schema
from repro.errors import ParseError


class TestParseAttribute:
    def test_aliases_normalise(self):
        assert parse_attribute("v:int").type_name == "int64"
        assert parse_attribute("v:double").type_name == "float64"
        assert parse_attribute("v:float").type_name == "float64"

    def test_whitespace_tolerated(self):
        attr = parse_attribute("  v1 : int64 ")
        assert attr.name == "v1"

    def test_bad_type(self):
        with pytest.raises(ParseError):
            parse_attribute("v:string")

    def test_bad_shape(self):
        with pytest.raises(ParseError):
            parse_attribute("v int")


class TestParseDimension:
    def test_basic(self):
        dim = parse_dimension("i=1,6,3")
        assert (dim.name, dim.start, dim.end, dim.chunk_interval) == ("i", 1, 6, 3)

    def test_negative_range(self):
        dim = parse_dimension("lat=-90,89,4")
        assert dim.start == -90

    def test_malformed(self):
        with pytest.raises(ParseError):
            parse_dimension("i=1,6")


class TestParseSchema:
    def test_paper_example(self):
        schema = parse_schema("A<v1:int, v2:float>[i=1,6,3, j=1,6,3]")
        assert schema.name == "A"
        assert schema.attr_names == ("v1", "v2")
        assert schema.dim_names == ("i", "j")
        assert schema.chunk_grid == (2, 2)

    def test_trailing_semicolon(self):
        schema = parse_schema("B<w:int>[j=1,8,2];")
        assert schema.name == "B"

    def test_dimensionless(self):
        schema = parse_schema("T<i:int64, j:int64>[]")
        assert schema.is_dimensionless()
        assert schema.attr_names == ("i", "j")

    def test_three_dimensions(self):
        schema = parse_schema(
            "M<reflectance:float64>[time=1,7,7, lon=1,360,4, lat=1,180,4]"
        )
        assert schema.chunk_grid == (1, 90, 45)

    def test_no_attributes_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("A<>[i=1,6,3]")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("SELECT * FROM A")

    def test_malformed_dimension_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("A<v:int>[i=1,6]")
