"""Tests for dense materialisation, row iteration, and ANALYZE DDL."""

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray, parse_schema
from repro.errors import ParseError, SchemaError
from repro.query.ddl import AnalyzeArray, parse_statement


class TestToDense:
    def test_full_window(self, figure1_array):
        dense = figure1_array.to_dense("v1", fill_value=-1)
        assert dense.shape == (6, 6)
        cells = figure1_array.cells()
        for coord, value in zip(cells.coords, cells.attrs["v1"]):
            assert dense[coord[0] - 1, coord[1] - 1] == value
        assert (dense == -1).sum() == 36 - figure1_array.n_cells

    def test_window_corners(self, figure1_array):
        dense = figure1_array.to_dense("v1", low=(4, 4), high=(6, 6))
        assert dense.shape == (3, 3)

    def test_float_attribute(self, figure1_array):
        dense = figure1_array.to_dense("v2", fill_value=np.nan)
        assert np.isnan(dense).sum() == 36 - figure1_array.n_cells

    def test_unknown_attribute(self, figure1_array):
        with pytest.raises(SchemaError):
            figure1_array.to_dense("zz")

    def test_empty_window_rejected(self, figure1_array):
        with pytest.raises(SchemaError):
            figure1_array.to_dense("v1", low=(5, 5), high=(2, 2))

    def test_dimensionless_rejected(self):
        schema = parse_schema("T<x:int64>[]")
        array = LocalArray.from_cells(
            schema, CellSet(np.empty((2, 0)), {"x": np.array([1, 2])})
        )
        with pytest.raises(SchemaError):
            array.to_dense("x")

    def test_empty_array(self):
        schema = parse_schema("E<v:int64>[i=1,4,2]")
        dense = LocalArray.empty(schema).to_dense("v", fill_value=7)
        assert (dense == 7).all()


class TestRows:
    def test_row_dicts(self, figure1_array):
        rows = list(figure1_array.rows())
        assert len(rows) == figure1_array.n_cells
        first = rows[0]
        assert set(first) == {"i", "j", "v1", "v2"}
        assert isinstance(first["i"], int)
        assert isinstance(first["v2"], float)

    def test_values_match_cells(self, figure1_array):
        cells = figure1_array.cells()
        for position, row in enumerate(figure1_array.rows()):
            assert row["i"] == cells.coords[position, 0]
            assert row["v1"] == cells.attrs["v1"][position]


class TestAnalyzeStatement:
    def test_parse(self):
        stmt = parse_statement("ANALYZE A")
        assert isinstance(stmt, AnalyzeArray)
        assert stmt.name == "A"

    def test_malformed(self):
        with pytest.raises(ParseError):
            parse_statement("ANALYZE")

    def test_session_surface(self):
        from repro import Session

        rng = np.random.default_rng(3)
        session = Session(n_nodes=2)
        coords = np.unique(rng.integers(1, 33, size=(200, 2)), axis=0)
        session.create_and_load(
            "A<v:int64>[i=1,32,8, j=1,32,8]",
            CellSet(coords, {"v": rng.integers(0, 50, len(coords))}),
        )
        stats = session.execute("ANALYZE A")
        assert stats.cell_count == len(coords)
        assert "v" in stats.histograms
        assert session.cluster.catalog.entry("A").statistics_fresh
