"""Unit tests for chunk construction and validation."""

import numpy as np
import pytest

from repro.adm.cells import CellSet
from repro.adm.chunk import Chunk, build_chunks
from repro.adm.parser import parse_schema
from repro.errors import SchemaError


class TestBuildChunks:
    def test_only_occupied_chunks_stored(self, small_schema):
        cells = CellSet(np.array([[1, 1], [6, 6]]), {
            "v1": np.array([1, 2]), "v2": np.array([0.5, 1.5]),
        })
        chunks = build_chunks(small_schema, cells)
        assert sorted(chunks) == [0, 3]

    def test_partition_is_exact(self, small_schema, rng):
        coords = rng.integers(1, 7, size=(40, 2))
        cells = CellSet(coords, {
            "v1": rng.integers(0, 9, 40), "v2": rng.uniform(0, 1, 40),
        })
        chunks = build_chunks(small_schema, cells)
        total = sum(chunk.n_cells for chunk in chunks.values())
        assert total == 40
        merged = CellSet.concat([c.cells for c in chunks.values()])
        assert merged.same_cells(cells)

    def test_chunks_sorted_by_default(self, small_schema, rng):
        coords = rng.integers(1, 7, size=(30, 2))
        cells = CellSet(coords, {
            "v1": rng.integers(0, 9, 30), "v2": rng.uniform(0, 1, 30),
        })
        for chunk in build_chunks(small_schema, cells).values():
            assert chunk.sorted_cells
            assert chunk.cells.is_c_ordered()

    def test_unsorted_mode(self, small_schema):
        cells = CellSet(np.array([[2, 2], [1, 1]]), {
            "v1": np.array([1, 2]), "v2": np.array([0.1, 0.2]),
        })
        chunks = build_chunks(small_schema, cells, sort=False)
        assert not chunks[0].sorted_cells

    def test_empty_cells_no_chunks(self, small_schema):
        cells = CellSet.empty(2, {"v1": np.dtype(np.int64), "v2": np.dtype(np.float64)})
        assert build_chunks(small_schema, cells) == {}

    def test_dimensionless_single_chunk(self):
        schema = parse_schema("T<x:int64>[]")
        cells = CellSet(np.empty((3, 0)), {"x": np.arange(3)})
        chunks = build_chunks(schema, cells)
        assert list(chunks) == [0]

    def test_out_of_range_rejected(self, small_schema):
        cells = CellSet(np.array([[9, 9]]), {
            "v1": np.array([1]), "v2": np.array([0.1]),
        })
        with pytest.raises(SchemaError):
            build_chunks(small_schema, cells)


class TestChunk:
    def test_sort_idempotent(self, small_schema):
        cells = CellSet(np.array([[2, 2], [1, 1]]), {
            "v1": np.array([1, 2]), "v2": np.array([0.1, 0.2]),
        })
        chunk = Chunk(0, (1, 1), cells, sorted_cells=False)
        assert chunk.sort().cells.is_c_ordered()
        resorted = chunk.sort().sort()
        assert resorted.sorted_cells

    def test_validate_against_catches_strays(self, small_schema):
        cells = CellSet(np.array([[5, 5]]), {
            "v1": np.array([1]), "v2": np.array([0.1]),
        })
        chunk = Chunk(0, (1, 1), cells)
        with pytest.raises(SchemaError):
            chunk.validate_against(small_schema)

    def test_figure1_layout(self, figure1_array):
        # The paper's example stores exactly the first and last chunks...
        # plus the two middle ones occupied by our fixture's extra cells.
        assert 0 in figure1_array.chunks
        assert 3 in figure1_array.chunks
