"""Unit tests for dimensions, attributes, and array schemas."""

import numpy as np
import pytest

from repro.adm.schema import ArraySchema, Attribute, Dimension
from repro.errors import SchemaError


class TestDimension:
    def test_extent_is_inclusive(self):
        dim = Dimension("i", 1, 6, 3)
        assert dim.extent == 6

    def test_chunk_count_rounds_up(self):
        assert Dimension("i", 1, 6, 3).chunk_count == 2
        assert Dimension("i", 1, 7, 3).chunk_count == 3
        assert Dimension("i", 1, 1, 3).chunk_count == 1

    def test_chunk_index_vectorised(self):
        dim = Dimension("i", 1, 9, 3)
        np.testing.assert_array_equal(
            dim.chunk_index_of(np.array([1, 3, 4, 9])), [0, 0, 1, 2]
        )

    def test_chunk_start(self):
        dim = Dimension("i", 1, 9, 3)
        assert [dim.chunk_start(k) for k in range(3)] == [1, 4, 7]

    def test_negative_start_supported(self):
        dim = Dimension("lat", -90, 89, 4)
        assert dim.extent == 180
        assert dim.chunk_index_of(np.array([-90]))[0] == 0

    def test_contains(self):
        dim = Dimension("i", 1, 6, 3)
        np.testing.assert_array_equal(
            dim.contains(np.array([0, 1, 6, 7])), [False, True, True, False]
        )

    def test_same_shape_ignores_name(self):
        assert Dimension("i", 1, 6, 3).same_shape(Dimension("j", 1, 6, 3))
        assert not Dimension("i", 1, 6, 3).same_shape(Dimension("i", 1, 6, 2))

    def test_rejects_inverted_range(self):
        with pytest.raises(SchemaError):
            Dimension("i", 5, 1, 3)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(SchemaError):
            Dimension("i", 1, 6, 0)

    def test_literal_roundtrip(self):
        assert Dimension("i", 1, 6, 3).to_literal() == "i=1,6,3"


class TestAttribute:
    def test_known_types(self):
        assert Attribute("v", "int64").dtype == np.dtype(np.int64)
        assert Attribute("v", "float64").dtype == np.dtype(np.float64)

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("v", "varchar")


class TestArraySchema:
    def test_chunk_grid(self, small_schema):
        assert small_schema.chunk_grid == (2, 2)
        assert small_schema.n_chunks == 4

    def test_logical_cells(self, small_schema):
        assert small_schema.logical_cells == 36

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            ArraySchema(
                "A",
                (Dimension("i", 1, 6, 3),),
                (Attribute("i", "int64"),),
            )

    def test_chunk_ids_c_order(self, small_schema):
        # Chunk ids follow row-major order over the 2x2 grid.
        coords = np.array([[1, 1], [1, 4], [4, 1], [4, 4]])
        np.testing.assert_array_equal(
            small_schema.chunk_ids(coords), [0, 1, 2, 3]
        )

    def test_chunk_corner_inverts_chunk_ids(self, small_schema):
        for chunk_id in range(small_schema.n_chunks):
            corner = small_schema.chunk_corner(chunk_id)
            recovered = small_schema.chunk_ids(np.array([corner]))[0]
            assert recovered == chunk_id

    def test_chunk_corner_out_of_range(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.chunk_corner(4)

    def test_validate_coords(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.validate_coords(np.array([[0, 1]]))
        small_schema.validate_coords(np.array([[1, 1], [6, 6]]))

    def test_dimensionless_schema(self):
        schema = ArraySchema("T", (), (Attribute("x", "int64"),))
        assert schema.is_dimensionless()
        assert schema.n_chunks == 1
        assert schema.chunk_corner(0) == ()
        np.testing.assert_array_equal(
            schema.chunk_ids(np.empty((3, 0))), [0, 0, 0]
        )

    def test_field_kind(self, small_schema):
        assert small_schema.field_kind("i") == "dimension"
        assert small_schema.field_kind("v1") == "attribute"
        with pytest.raises(SchemaError):
            small_schema.field_kind("nope")

    def test_same_shape(self, small_schema):
        other = small_schema.with_name("B")
        assert small_schema.same_shape(other)

    def test_literal_roundtrip(self, small_schema):
        from repro.adm.parser import parse_schema

        assert parse_schema(small_schema.to_literal()) == small_schema
