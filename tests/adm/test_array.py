"""Unit tests for local chunked arrays."""

import numpy as np
import pytest

from repro.adm.array import LocalArray
from repro.adm.cells import CellSet
from repro.adm.chunk import Chunk
from repro.adm.parser import parse_schema
from repro.errors import SchemaError


class TestFromCells:
    def test_figure1(self, figure1_array):
        assert figure1_array.n_cells == 15
        assert figure1_array.n_chunks >= 2

    def test_attr_mismatch_rejected(self, small_schema):
        cells = CellSet(np.array([[1, 1]]), {"other": np.array([1])})
        with pytest.raises(SchemaError):
            LocalArray.from_cells(small_schema, cells)

    def test_ndims_mismatch_rejected(self, small_schema):
        cells = CellSet(
            np.array([[1]]),
            {"v1": np.array([1]), "v2": np.array([0.1])},
        )
        with pytest.raises(SchemaError):
            LocalArray.from_cells(small_schema, cells)

    def test_cells_roundtrip(self, figure1_array):
        rebuilt = LocalArray.from_cells(
            figure1_array.schema, figure1_array.cells()
        )
        assert rebuilt.cells().same_cells(figure1_array.cells())


class TestMutation:
    def test_put_chunk_merges(self, small_schema):
        array = LocalArray.empty(small_schema)
        cells_a = CellSet(np.array([[1, 1]]), {
            "v1": np.array([1]), "v2": np.array([0.1]),
        })
        cells_b = CellSet(np.array([[2, 2]]), {
            "v1": np.array([2]), "v2": np.array([0.2]),
        })
        array.put_chunk(Chunk(0, (1, 1), cells_a))
        array.put_chunk(Chunk(0, (1, 1), cells_b))
        assert array.n_cells == 2
        assert not array.chunks[0].sorted_cells  # merged chunks lose order

    def test_put_chunk_validates(self, small_schema):
        array = LocalArray.empty(small_schema)
        stray = Chunk(0, (1, 1), CellSet(np.array([[6, 6]]), {
            "v1": np.array([1]), "v2": np.array([0.1]),
        }))
        with pytest.raises(SchemaError):
            array.put_chunk(stray)


class TestStatistics:
    def test_density(self, figure1_array):
        assert figure1_array.density() == pytest.approx(15 / 36)

    def test_chunk_sizes(self, figure1_array):
        sizes = figure1_array.chunk_sizes()
        assert sum(sizes.values()) == 15

    def test_skew_summary_uniform(self, rng):
        schema = parse_schema("U<v:int64>[i=1,100,10]")
        coords = np.arange(1, 101).reshape(-1, 1)
        array = LocalArray.from_cells(
            schema, CellSet(coords, {"v": rng.integers(0, 5, 100)})
        )
        summary = array.skew_summary(top_fraction=0.1)
        assert summary["top_share"] == pytest.approx(0.1)

    def test_skew_summary_empty(self, small_schema):
        array = LocalArray.empty(small_schema)
        assert array.skew_summary()["max"] == 0.0

    def test_iteration_in_chunk_order(self, figure1_array):
        ids = [chunk.chunk_id for chunk in figure1_array]
        assert ids == sorted(ids)
