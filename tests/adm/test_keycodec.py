"""Property tests for the packed 64-bit key codec.

The codec's contract: packing is an exact, order-preserving collapse of
a multi-field composite key — unsigned comparison of the packed column
agrees with lexicographic comparison of the structured representation,
roundtrips recover the original values, and layouts too wide for 64
bits decline rather than truncate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm.cells import composite_key, float_key_bits
from repro.adm.keycodec import MAX_PACKED_BITS, KeyCodec, key_bits, plan_codec
from repro.adm.schema import Dimension
from repro.errors import SchemaError

# Signed values spanning several byte widths, including the extremes
# that expose off-by-one width planning.
int_values = st.integers(-(2**40), 2**40) | st.sampled_from(
    [0, -1, 1, -(2**31), 2**31 - 1]
)
float_values = st.floats(
    allow_nan=False, allow_infinity=True, width=64
) | st.sampled_from([0.0, -0.0, 1.5, -1.5])


def int_column(draw, n):
    return np.array([draw(int_values) for _ in range(n)], dtype=np.int64)


def float_column(draw, n):
    return np.array([draw(float_values) for _ in range(n)], dtype=np.float64)


@st.composite
def key_tables(draw):
    """A pair of row-aligned key-column lists sharing a field signature."""
    n_fields = draw(st.integers(1, 3))
    floaty = [draw(st.booleans()) for _ in range(n_fields)]
    tables = []
    for _ in range(2):
        n = draw(st.integers(1, 25))
        tables.append(
            [
                float_column(draw, n) if is_f else int_column(draw, n)
                for is_f in floaty
            ]
        )
    return tables


class TestRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(key_tables())
    def test_pack_unpack_roundtrip(self, tables):
        codec = plan_codec(tables)
        if codec is None:
            return  # too wide: fallback is exercised separately
        for columns in tables:
            unpacked = codec.unpack(codec.pack(columns))
            for original, recovered in zip(columns, unpacked):
                # Bit-pattern equality: -0.0 normalises to +0.0 by design.
                assert np.array_equal(
                    key_bits(original, original.dtype.kind == "f"),
                    key_bits(recovered, recovered.dtype.kind == "f"),
                )

    def test_recovers_exact_values(self):
        ints = [np.array([-5, 0, 17], dtype=np.int64)]
        codec = plan_codec([ints])
        assert codec is not None
        np.testing.assert_array_equal(
            codec.unpack(codec.pack(ints))[0], ints[0]
        )
        floats = [np.array([2.5, -0.0, 1e300])]
        codec = plan_codec([floats])
        assert codec is not None
        np.testing.assert_array_equal(
            codec.unpack(codec.pack(floats))[0], [2.5, 0.0, 1e300]
        )


class TestOrderPreservation:
    @settings(max_examples=60, deadline=None)
    @given(key_tables())
    def test_packed_order_matches_structured_order(self, tables):
        """Stable argsort of the packed column equals stable argsort of
        the structured composite key — every sort, searchsorted, and run
        boundary the join kernels compute agrees between the two
        representations."""
        codec = plan_codec(tables)
        if codec is None:
            return
        for columns in tables:
            packed = codec.pack(columns)
            structured = composite_key(columns)
            np.testing.assert_array_equal(
                np.argsort(packed, kind="stable"),
                np.argsort(structured, kind="stable"),
            )
            # Equality structure agrees too (injective on the range).
            np.testing.assert_array_equal(
                packed[:, None] == packed[None, :],
                structured[:, None] == structured[None, :],
            )

    def test_float_bit_order_not_numeric_order(self):
        # Both representations order floats by int64 bit pattern, not
        # numerically — what matters is that they agree.
        columns = [np.array([-1.0, 2.0, -3.0, 0.0])]
        codec = plan_codec([columns])
        packed = codec.pack(columns)
        structured = composite_key(columns)
        np.testing.assert_array_equal(
            np.argsort(packed, kind="stable"),
            np.argsort(structured, kind="stable"),
        )


class TestPlanning:
    def test_width_covers_union_of_sets(self):
        left = [np.array([0, 10], dtype=np.int64)]
        right = [np.array([100, 200], dtype=np.int64)]
        codec = plan_codec([left, right])
        assert codec.offsets == (0,)
        assert codec.widths == ((200).bit_length(),)
        # Equal values pack equal across the two sets.
        assert codec.pack(left)[1] != codec.pack(right)[0]
        both = [np.array([10], dtype=np.int64)]
        assert codec.pack(both)[0] == codec.pack(left)[1]

    def test_dims_widen_integer_ranges(self):
        dim = Dimension("i", start=1, end=1000, chunk_interval=100)
        observed = [np.array([5, 7], dtype=np.int64)]
        codec = plan_codec([observed], dims=[dim])
        assert codec.offsets == (1,)
        assert codec.widths == ((999).bit_length(),)

    def test_overflow_returns_none(self):
        wide = [
            np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max]),
            np.array([0, 1], dtype=np.int64),
        ]
        assert plan_codec([wide]) is None

    def test_float_field_always_needs_64_bits_plus_any(self):
        # A full-range float field consumes 64 bits on its own, so any
        # companion field with spread overflows the lane.
        columns = [
            np.array([-1.0, 1.0]),  # sign-bit spread: 64-bit span
            np.array([0, 1], dtype=np.int64),
        ]
        assert plan_codec([columns]) is None

    def test_constant_field_needs_zero_bits(self):
        columns = [
            np.array([42, 42], dtype=np.int64),
            np.array([1, 2], dtype=np.int64),
        ]
        codec = plan_codec([columns])
        assert codec.widths[0] == 0
        assert codec.total_width == 1
        packed = codec.pack(columns)
        assert packed[0] != packed[1]

    def test_empty_sets_use_dim_bounds(self):
        dim = Dimension("i", start=0, end=63, chunk_interval=8)
        codec = plan_codec(
            [[np.array([], dtype=np.int64)]], dims=[dim]
        )
        assert codec.widths == (6,)

    def test_bad_inputs_rejected(self):
        with pytest.raises(SchemaError):
            plan_codec([])
        with pytest.raises(SchemaError):
            plan_codec([[]])
        with pytest.raises(SchemaError):
            plan_codec(
                [
                    [np.array([1], dtype=np.int64)],
                    [np.array([1], dtype=np.int64)] * 2,
                ]
            )
        codec = KeyCodec(offsets=(0,), widths=(4,), is_float=(False,))
        with pytest.raises(SchemaError):
            codec.pack([np.array([1]), np.array([2])])

    def test_max_width_exactly_64_accepted(self):
        columns = [np.array([0.0, -0.0, 5.0])]
        codec = plan_codec([columns])
        assert codec is not None
        assert codec.total_width <= MAX_PACKED_BITS

    def test_negative_zero_packs_like_positive_zero(self):
        columns = [np.array([-0.0, 0.0])]
        codec = plan_codec([columns])
        packed = codec.pack(columns)
        assert packed[0] == packed[1]


class TestKeyBits:
    def test_float_key_bits_normalises_negative_zero(self):
        bits = float_key_bits(np.array([-0.0, 0.0]))
        assert bits[0] == bits[1] == 0

    def test_int_passthrough(self):
        col = np.array([1, -2, 3], dtype=np.int64)
        np.testing.assert_array_equal(key_bits(col, False), col)
