"""Unit tests for histograms and dimension inference."""

import numpy as np
import pytest

from repro.adm.stats import Histogram, infer_dimension
from repro.errors import SchemaError


class TestHistogram:
    def test_from_values(self):
        hist = Histogram.from_values(np.arange(100), bins=10)
        assert hist.low == 0
        assert hist.high == 99
        assert hist.total == 100
        assert hist.n_bins == 10

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Histogram.from_values(np.array([]))

    def test_merge_extends_range(self):
        a = Histogram.from_values(np.arange(0, 50))
        b = Histogram.from_values(np.arange(100, 200))
        merged = a.merge(b)
        assert merged.low == 0
        assert merged.high == 199
        assert merged.total == a.total + b.total

    def test_merge_is_commutative_in_totals(self):
        a = Histogram.from_values(np.arange(10))
        b = Histogram.from_values(np.arange(5, 25))
        assert a.merge(b).total == b.merge(a).total

    def test_single_value(self):
        hist = Histogram.from_values(np.full(5, 42))
        assert hist.low == 42
        assert hist.total == 5


class TestInferDimension:
    def test_covers_range(self):
        hist = Histogram.from_values(np.arange(1, 1001))
        dim = infer_dimension("v", hist, target_chunks=10)
        assert dim.start == 1
        assert dim.end == 1000
        assert dim.chunk_count <= 11

    def test_small_domain(self):
        hist = Histogram.from_values(np.array([3, 4, 5]))
        dim = infer_dimension("v", hist, target_chunks=32)
        assert dim.chunk_interval >= 1
        assert dim.contains(np.array([3, 4, 5])).all()

    def test_invalid_target(self):
        hist = Histogram.from_values(np.arange(10))
        with pytest.raises(SchemaError):
            infer_dimension("v", hist, target_chunks=0)
