"""Unit tests for cell sets."""

import numpy as np
import pytest

from repro.adm.cells import CellSet, composite_key
from repro.errors import SchemaError


def make_cells(n=10, ndims=2, seed=0):
    gen = np.random.default_rng(seed)
    return CellSet(
        gen.integers(1, 100, size=(n, ndims)),
        {"v": gen.integers(0, 50, n), "w": gen.uniform(0, 1, n)},
    )


class TestConstruction:
    def test_1d_coords_promoted(self):
        cells = CellSet(np.array([1, 2, 3]), {"v": np.array([4, 5, 6])})
        assert cells.coords.shape == (3, 1)

    def test_mismatched_column_length(self):
        with pytest.raises(SchemaError):
            CellSet(np.zeros((3, 1)), {"v": np.array([1, 2])})

    def test_empty(self):
        cells = CellSet.empty(2, {"v": np.dtype(np.int64)})
        assert len(cells) == 0
        assert cells.ndims == 2

    def test_nbytes_counts_coords_and_attrs(self):
        cells = make_cells(4)
        assert cells.nbytes == cells.coords.nbytes + sum(
            col.nbytes for col in cells.attrs.values()
        )


class TestConcat:
    def test_roundtrip(self):
        cells = make_cells(10)
        left, right = cells.take(np.arange(4)), cells.take(np.arange(4, 10))
        merged = CellSet.concat([left, right])
        assert merged.same_cells(cells)

    def test_mismatched_attrs_rejected(self):
        a = CellSet(np.zeros((1, 1)), {"v": np.array([1])})
        b = CellSet(np.zeros((1, 1)), {"w": np.array([1])})
        with pytest.raises(SchemaError):
            CellSet.concat([a, b])

    def test_mismatched_dims_rejected(self):
        a = CellSet(np.zeros((1, 1)), {"v": np.array([1])})
        b = CellSet(np.zeros((1, 2)), {"v": np.array([1])})
        with pytest.raises(SchemaError):
            CellSet.concat([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(SchemaError):
            CellSet.concat([])


class TestColumns:
    def test_with_attrs_projects(self):
        cells = make_cells()
        projected = cells.with_attrs(["v"])
        assert projected.attr_names == ("v",)
        np.testing.assert_array_equal(projected.coords, cells.coords)

    def test_with_attrs_missing(self):
        with pytest.raises(SchemaError):
            make_cells().with_attrs(["nope"])

    def test_dim_column_bounds(self):
        cells = make_cells(ndims=2)
        with pytest.raises(SchemaError):
            cells.dim_column(2)

    def test_rename(self):
        renamed = make_cells().rename_attrs({"v": "value"})
        assert set(renamed.attr_names) == {"value", "w"}


class TestPartition:
    def test_partition_is_exact(self):
        cells = make_cells(50)
        keys = np.arange(50) % 4
        parts = cells.partition(keys, 4)
        assert sum(len(p) for p in parts) == 50
        assert CellSet.concat(parts).same_cells(cells)

    def test_empty_parts_materialised(self):
        cells = make_cells(3)
        parts = cells.partition(np.zeros(3, dtype=np.int64), 5)
        assert len(parts) == 5
        assert [len(p) for p in parts] == [3, 0, 0, 0, 0]

    def test_out_of_range_keys_rejected(self):
        cells = make_cells(3)
        with pytest.raises(SchemaError):
            cells.partition(np.array([0, 1, 5]), 3)

    def test_wrong_length_rejected(self):
        with pytest.raises(SchemaError):
            make_cells(3).partition(np.array([0, 1]), 2)

    def test_zero_cells(self):
        cells = CellSet.empty(2, {"v": np.int64})
        parts = cells.partition(np.empty(0, dtype=np.int64), 3)
        assert [len(p) for p in parts] == [0, 0, 0]
        assert all(p.ndims == 2 and p.attr_names == ("v",) for p in parts)

    def test_single_part_identity(self):
        cells = make_cells(20)
        (part,) = cells.partition(np.zeros(20, dtype=np.int64), 1)
        assert part.same_cells(cells)

    def test_all_one_part_skew(self):
        """Pathological skew: every cell lands in one of many parts."""
        cells = make_cells(40)
        parts = cells.partition(np.full(40, 6, dtype=np.int64), 8)
        assert [len(p) for p in parts] == [0, 0, 0, 0, 0, 0, 40, 0]
        assert parts[6].same_cells(cells)

    def test_parts_are_views_not_copies(self):
        """Parts slice one key-sorted copy: no per-part fancy-index
        copies, so every part is a view into one shared buffer."""
        cells = make_cells(50)
        keys = np.arange(50) % 4
        parts = cells.partition(keys, 4)
        coord_bases = set()
        for part in parts:
            if not len(part):
                continue
            assert part.coords.base is not None  # a view, not an owner
            coord_bases.add(id(part.coords.base))
            for name, column in part.attrs.items():
                assert column.base is not None
        assert len(coord_bases) == 1  # all views into the same sorted copy

    def test_split_sorted_views_cover_input(self):
        cells = make_cells(30)
        boundaries = np.array([0, 10, 10, 30])
        parts = cells.split_sorted(boundaries)
        assert [len(p) for p in parts] == [10, 0, 20]
        for part in parts:
            if len(part):
                assert np.shares_memory(part.coords, cells.coords)


class TestCompositeKey:
    def test_float32_promoted_to_comparable_bits(self):
        """float32 columns participate via float64 bit patterns, so equal
        values compare equal regardless of input width."""
        narrow = np.array([0.5, -1.25, 3.0], dtype=np.float32)
        wide = narrow.astype(np.float64)
        assert np.array_equal(composite_key([narrow]), composite_key([wide]))

    def test_zero_rows(self):
        key = composite_key([np.empty(0, dtype=np.int64)])
        assert len(key) == 0

    def test_no_columns_rejected(self):
        with pytest.raises(SchemaError):
            composite_key([])

    def test_mixed_columns_distinguish_rows(self):
        ints = np.array([1, 1, 2])
        floats = np.array([0.5, 0.25, 0.5], dtype=np.float32)
        key = composite_key([ints, floats])
        assert len(np.unique(key)) == 3
        assert key[0] != key[1]

    def test_negative_zero_equals_positive_zero(self):
        """Regression: ``-0.0 == +0.0`` numerically but their IEEE bit
        patterns differ, so the raw bit view used to split them into
        distinct key values and silently drop equi-join matches."""
        key = composite_key([np.array([-0.0, 0.0, 1.0])])
        assert key[0] == key[1]
        assert key[0] != key[2]
        assert np.array_equal(
            composite_key([np.array([-0.0, -0.0])]),
            composite_key([np.array([0.0, 0.0])]),
        )

    def test_nan_bit_patterns_preserved(self):
        # NaN != NaN numerically; the bit-pattern key keeps NaNs equal to
        # themselves as key values, which is the documented behaviour.
        key = composite_key([np.array([np.nan, np.nan, 0.0])])
        assert key[0] == key[1]
        assert key[0] != key[2]


class TestCOrder:
    def test_sort_produces_c_order(self):
        cells = make_cells(100, seed=3)
        assert cells.sorted_c_order().is_c_ordered()

    def test_figure1_serialisation(self):
        # Figure 1: first chunk of v1 serialises as (3,1,1,7,4,0,0) under
        # C-style ordering (outermost dimension first).
        coords = np.array(
            [[2, 1], [1, 2], [3, 2], [1, 1], [3, 3], [2, 2], [3, 1]]
        )
        v1 = np.array([1, 1, 0, 3, 0, 7, 4])
        cells = CellSet(coords, {"v1": v1}).sorted_c_order()
        np.testing.assert_array_equal(cells.attrs["v1"], [3, 1, 1, 7, 4, 0, 0])

    def test_is_c_ordered_detects_disorder(self):
        cells = CellSet(np.array([[2, 1], [1, 1]]), {"v": np.array([1, 2])})
        assert not cells.is_c_ordered()

    def test_inner_dimension_breaks_ties(self):
        cells = CellSet(np.array([[1, 2], [1, 1]]), {"v": np.array([1, 2])})
        assert not cells.is_c_ordered()
        assert cells.sorted_c_order().is_c_ordered()

    def test_zero_dim_cells_trivially_ordered(self):
        cells = CellSet(np.empty((4, 0)), {"v": np.arange(4)})
        assert cells.is_c_ordered()


class TestSameCells:
    def test_order_insensitive(self):
        cells = make_cells(20)
        shuffled = cells.take(np.random.default_rng(1).permutation(20))
        assert cells.same_cells(shuffled)

    def test_detects_value_change(self):
        cells = make_cells(5)
        attrs = {k: v.copy() for k, v in cells.attrs.items()}
        attrs["v"][0] += 1
        assert not cells.same_cells(CellSet(cells.coords, attrs))

    def test_detects_multiplicity(self):
        cells = make_cells(5)
        doubled = CellSet.concat([cells, cells.take(np.array([0]))])
        assert not cells.same_cells(doubled)


class TestCompositeKey:
    def test_int_columns(self):
        key = composite_key([np.array([1, 2]), np.array([3, 4])])
        assert len(key) == 2
        assert key[0] != key[1]

    def test_float_equality_preserved(self):
        a = composite_key([np.array([1.5, 2.5])])
        b = composite_key([np.array([1.5, 0.0])])
        assert a[0] == b[0]
        assert a[1] != b[1]

    def test_empty_column_list_rejected(self):
        with pytest.raises(SchemaError):
            composite_key([])
