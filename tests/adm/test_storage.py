"""Tests for the on-disk chunk serialization format."""

import numpy as np
import pytest

from repro.adm.cells import CellSet
from repro.adm.chunk import Chunk, build_chunks
from repro.adm.storage import (
    chunk_nbytes_serialized,
    decode_int_column,
    deserialize_chunk,
    encode_int_column,
    serialize_attribute,
    serialize_chunk,
)
from repro.errors import SchemaError


class TestIntColumnCodec:
    def test_roundtrip_random(self, rng):
        column = rng.integers(-(10**12), 10**12, 500)
        decoded, offset = decode_int_column(
            encode_int_column(column), 0, len(column)
        )
        np.testing.assert_array_equal(decoded, column)

    def test_rle_chosen_for_runs(self):
        runs = np.repeat(np.array([7, 8, 9]), 200)
        random_ish = np.arange(600)
        assert len(encode_int_column(runs)) < len(encode_int_column(random_ish))

    def test_rle_roundtrip(self):
        column = np.repeat(np.array([5, -3, 5]), [100, 50, 25])
        decoded, _ = decode_int_column(encode_int_column(column), 0, 175)
        np.testing.assert_array_equal(decoded, column)

    def test_empty_column(self):
        decoded, _ = decode_int_column(
            encode_int_column(np.empty(0, dtype=np.int64)), 0, 0
        )
        assert len(decoded) == 0


class TestChunkRoundtrip:
    def test_figure1_chunk(self, figure1_array):
        chunk = figure1_array.chunks[0]
        restored = deserialize_chunk(
            serialize_chunk(chunk), figure1_array.schema
        )
        assert restored.chunk_id == chunk.chunk_id
        assert restored.corner == chunk.corner
        assert restored.cells.same_cells(chunk.cells)

    def test_roundtrip_without_schema(self, figure1_array):
        """Float columns are recognised from their tags alone."""
        chunk = figure1_array.chunks[0]
        restored = deserialize_chunk(serialize_chunk(chunk))
        assert restored.cells.same_cells(chunk.cells)
        assert restored.cells.attrs["v2"].dtype == np.float64

    def test_order_preserved(self, figure1_array):
        chunk = figure1_array.chunks[0]
        restored = deserialize_chunk(serialize_chunk(chunk))
        np.testing.assert_array_equal(
            restored.cells.coords, chunk.cells.coords
        )

    def test_attribute_projection(self, figure1_array):
        chunk = figure1_array.chunks[0]
        restored = deserialize_chunk(
            serialize_chunk(chunk, attributes=["v1"])
        )
        assert restored.cells.attr_names == ("v1",)

    def test_unknown_attribute_rejected(self, figure1_array):
        with pytest.raises(SchemaError):
            serialize_chunk(figure1_array.chunks[0], attributes=["zz"])

    def test_bad_magic_rejected(self, figure1_array):
        data = bytearray(serialize_chunk(figure1_array.chunks[0]))
        data[0] ^= 0xFF
        with pytest.raises(SchemaError):
            deserialize_chunk(bytes(data))


class TestVerticalPartitioning:
    def test_single_attribute_smaller_than_chunk(self, figure1_array):
        chunk = figure1_array.chunks[0]
        single = len(serialize_attribute(chunk, "v1"))
        full = chunk_nbytes_serialized(chunk)
        assert single < full

    def test_sorted_chunks_compress_coordinates(self, rng):
        """C-ordered chunks delta+RLE coordinates well below raw size."""
        from repro.adm.parser import parse_schema

        schema = parse_schema("S<v:int64>[i=1,64,64, j=1,64,64]")
        coords = np.stack(
            np.meshgrid(np.arange(1, 65), np.arange(1, 65), indexing="ij"),
            axis=-1,
        ).reshape(-1, 2)
        cells = CellSet(coords, {"v": np.zeros(len(coords), dtype=np.int64)})
        chunk = build_chunks(schema, cells)[0]
        stored = chunk_nbytes_serialized(chunk)
        raw = chunk.cells.nbytes
        assert stored < raw / 4

    def test_skewed_sizes_vary(self, rng):
        """Stored size tracks occupancy — the paper's storage-skew remark."""
        from repro.adm.parser import parse_schema

        schema = parse_schema("S<v:int64>[i=1,64,32, j=1,64,32]")
        dense = CellSet(
            np.stack(
                np.meshgrid(np.arange(1, 33), np.arange(1, 33), indexing="ij"),
                axis=-1,
            ).reshape(-1, 2),
            {"v": rng.integers(0, 10, 1024)},
        )
        sparse = CellSet(
            np.array([[40, 40], [50, 50]]), {"v": np.array([1, 2])}
        )
        chunks = build_chunks(schema, CellSet.concat([dense, sparse]))
        sizes = {cid: chunk_nbytes_serialized(c) for cid, c in chunks.items()}
        assert max(sizes.values()) > 20 * min(sizes.values())
