"""Property-based tests for the storage codec, AFL, and redimension."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.adm.cells import CellSet
from repro.adm.chunk import Chunk
from repro.adm.schema import ArraySchema, Attribute, Dimension
from repro.adm.storage import (
    decode_int_column,
    deserialize_chunk,
    encode_int_column,
    serialize_chunk,
)
from repro.adm.array import LocalArray
from repro.engine.operators import redimension
from repro.query.afl import parse_afl

int_columns = hnp.arrays(
    np.int64,
    st.integers(0, 300),
    elements=st.integers(-(2**40), 2**40),
)

runny_columns = st.lists(
    st.tuples(st.integers(-100, 100), st.integers(1, 50)), max_size=20
).map(
    lambda runs: np.repeat(
        np.array([v for v, _ in runs] or [0], dtype=np.int64),
        np.array([c for _, c in runs] or [0], dtype=np.int64),
    )
)


@given(int_columns)
def test_int_codec_roundtrip(column):
    decoded, _ = decode_int_column(encode_int_column(column), 0, len(column))
    np.testing.assert_array_equal(decoded, column)


@given(runny_columns)
def test_int_codec_roundtrip_runs(column):
    decoded, _ = decode_int_column(encode_int_column(column), 0, len(column))
    np.testing.assert_array_equal(decoded, column)


chunk_cells = st.integers(0, 80).flatmap(
    lambda n: st.tuples(
        hnp.arrays(np.int64, (n, 2), elements=st.integers(1, 16)),
        hnp.arrays(np.int64, n, elements=st.integers(-1000, 1000)),
        hnp.arrays(
            np.float64,
            n,
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
    )
)


@given(chunk_cells)
def test_chunk_serialization_roundtrip(data):
    coords, ints, floats = data
    cells = CellSet(coords, {"a": ints, "b": floats}).sorted_c_order()
    chunk = Chunk(chunk_id=0, corner=(1, 1), cells=cells)
    restored = deserialize_chunk(serialize_chunk(chunk))
    assert restored.cells.same_cells(cells)
    np.testing.assert_array_equal(restored.cells.coords, cells.coords)


@given(
    st.integers(0, 60).flatmap(
        lambda n: hnp.arrays(np.int64, (n, 2), elements=st.integers(1, 32))
    )
)
def test_redimension_roundtrip_property(coords):
    """dims -> attrs -> dims preserves the cell multiset."""
    schema = ArraySchema(
        "R",
        (Dimension("i", 1, 32, 8), Dimension("j", 1, 32, 8)),
        (Attribute("v", "int64"),),
    )
    cells = CellSet(coords, {"v": np.arange(len(coords), dtype=np.int64)})
    array = LocalArray.from_cells(schema, cells)
    # Promote v (unique row ids) to a dimension, demoting i and j.
    flat = redimension(
        array,
        ArraySchema(
            "F",
            (Dimension("v", 0, 10_000, 500),),
            (Attribute("i", "int64"), Attribute("j", "int64")),
        ),
    )
    back = redimension(flat, schema.with_name("R2"))
    assert back.cells().same_cells(array.cells())


afl_trees = st.recursive(
    st.sampled_from(["A", "B", "C"]),
    lambda children: st.builds(
        lambda op, left, right=None: (
            f"{op}({left})" if right is None else f"{op}({left}, {right})"
        ),
        st.sampled_from(["sort", "scan"]),
        children,
    ) | st.builds(
        lambda left, right: f"merge({left}, {right})", children, children
    ),
    max_leaves=6,
)


@given(afl_trees)
@settings(deadline=None)
def test_afl_parse_render_fixpoint(text):
    """render(parse(x)) is a fixpoint of parse."""
    first = parse_afl(text)
    second = parse_afl(first.render())
    assert first.render() == second.render()
