"""Metamorphic correctness properties of the whole executor.

Transformations that must not change a join's *result* (only its plan or
cost): swapping the operand order, moving a filter above/below the join,
changing the selectivity hint, the bucket count, or the shuffle policy.
"""

import numpy as np
import pytest

from repro.adm import CellSet
from repro.cluster import Cluster
from repro.engine import ShuffleJoinExecutor


@pytest.fixture
def cluster():
    gen = np.random.default_rng(61)
    cluster = Cluster(n_nodes=4)
    for name, placement in (("A", "round_robin"), ("B", "block")):
        coords = np.unique(gen.integers(1, 65, size=(1200, 2)), axis=0)
        cluster.create_array(
            f"{name}<v:int64, w:int64>[i=1,64,8, j=1,64,8]",
            CellSet(
                coords,
                {
                    "v": gen.integers(0, 40, len(coords)),
                    "w": gen.integers(0, 40, len(coords)),
                },
            ),
            placement=placement,
        )
    return cluster


class TestCommutativity:
    def test_dd_join_sides_swap(self, cluster):
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.5)
        forward = executor.execute(
            "SELECT A.v, B.w FROM A, B WHERE A.i = B.i AND A.j = B.j",
            planner="mbh",
        )
        backward = executor.execute(
            "SELECT A.v, B.w FROM B, A WHERE B.i = A.i AND B.j = A.j",
            planner="mbh",
        )
        assert forward.cells.same_cells(backward.cells)

    def test_aa_join_sides_swap(self, cluster):
        executor = ShuffleJoinExecutor(
            cluster, selectivity_hint=0.5, n_buckets=64
        )
        forward = executor.execute(
            "SELECT A.i INTO T<ai:int64>[] FROM A, B WHERE A.v = B.w",
            planner="tabu",
            join_algo="hash",
        )
        backward = executor.execute(
            "SELECT A.i INTO T<ai:int64>[] FROM B, A WHERE B.w = A.v",
            planner="tabu",
            join_algo="hash",
        )
        assert forward.cells.same_cells(backward.cells)


class TestFilterCommutesWithJoin:
    def test_pushdown_equals_postfilter(self, cluster):
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.5)
        pushed = executor.execute(
            "SELECT A.v FROM A, B "
            "WHERE A.i = B.i AND A.j = B.j AND A.v > 20",
            planner="mbh",
        )
        unfiltered = executor.execute(
            "SELECT A.v FROM A, B WHERE A.i = B.i AND A.j = B.j",
            planner="mbh",
        )
        post = unfiltered.cells.take(unfiltered.cells.attrs["v"] > 20)
        assert pushed.cells.same_cells(post)


class TestPlanKnobsDontChangeResults:
    QUERY = "SELECT A.v, B.w FROM A, B WHERE A.i = B.i AND A.j = B.j"

    def test_selectivity_hint_invariance(self, cluster):
        results = []
        for hint in (0.001, 1.0, 50.0):
            executor = ShuffleJoinExecutor(cluster, selectivity_hint=hint)
            results.append(executor.execute(self.QUERY, planner="mbh").cells)
        for cells in results[1:]:
            assert cells.same_cells(results[0])

    def test_bucket_count_invariance(self, cluster):
        query = "SELECT A.i INTO T<ai:int64>[] FROM A, B WHERE A.v = B.w"
        results = []
        for buckets in (7, 64, 513):
            executor = ShuffleJoinExecutor(
                cluster, selectivity_hint=0.5, n_buckets=buckets
            )
            results.append(
                executor.execute(query, planner="mbh", join_algo="hash").cells
            )
        for cells in results[1:]:
            assert cells.same_cells(results[0])

    def test_shuffle_policy_invariance(self, cluster):
        results = {}
        for policy in ("greedy_lock", "head_of_line", "uncoordinated"):
            executor = ShuffleJoinExecutor(
                cluster, selectivity_hint=0.5, shuffle_policy=policy
            )
            result = executor.execute(self.QUERY, planner="tabu")
            results[policy] = result
        reference = results["greedy_lock"]
        for policy, result in results.items():
            assert result.cells.same_cells(reference.cells)
            # Same cells move; only the schedule's timing differs.
            assert result.report.cells_moved == reference.report.cells_moved

    def test_join_algo_invariance(self, cluster):
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.5)
        merge = executor.execute(self.QUERY, planner="mbh", join_algo="merge")
        hash_ = executor.execute(self.QUERY, planner="mbh", join_algo="hash")
        assert merge.cells.same_cells(hash_.cells)
