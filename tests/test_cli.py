"""Tests for the command-line interface and the report generator."""

import pytest

from repro.bench.report import EXPERIMENT_RUNNERS, generate_report
from repro.cli import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "join order" in out or "chosen plan" in out
        assert "output:" in out

    def test_query_filter_and_join(self, capsys):
        code = main([
            "query",
            "SELECT * FROM A WHERE v > 40",
            "SELECT A.v FROM A, B WHERE A.i = B.i AND A.j = B.j",
            "--nodes", "2",
            "--planner", "mbh",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cells" in out

    def test_query_ddl(self, capsys):
        code = main([
            "query",
            "CREATE ARRAY Z<v:int64>[i=1,8,2]",
            "DROP ARRAY Z",
            "--nodes", "2",
        ])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_unknown_experiment_id(self, capsys):
        assert main(["experiments", "fig99"]) == 2

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "results.md"
        assert main(["report", "--out", str(out_file), "abl-tabu"]) == 0
        content = out_file.read_text()
        assert "# Reproduction results" in content
        assert "abl-tabu" in content
        assert "| variant" in content

    def test_monitor_scrapes_live_server(self, capsys):
        from repro.serve import JoinServer
        from tests.serve.test_server import FakeBackend

        backend = FakeBackend()
        backend.gate.set()
        with JoinServer(backend) as server:
            server.execute("Q", tenant="acme")
            with server.monitor() as monitor:
                assert main(["monitor", monitor.url, "--count", "2"]) == 0
                out = capsys.readouterr().out
                assert out.count("in_flight=") == 2
                assert "p99=" in out
                assert "acme" in out
                assert main(["monitor", monitor.url, "--metrics"]) == 0
                out = capsys.readouterr().out
                assert "repro_serve_queries_completed_total 1" in out


class TestReportGenerator:
    def test_registry_covers_all_artifacts(self):
        expected = {
            "fig5", "fig7", "fig8", "tab2", "fig9", "adv", "fig10",
            "abl-shuffle", "abl-tabu", "abl-buckets", "abl-bins",
            "abl-order",
        }
        assert set(EXPERIMENT_RUNNERS) == expected

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            generate_report(["nope"])

    def test_single_experiment_markdown(self):
        report = generate_report(["abl-tabu"])
        assert "## abl-tabu" in report
        assert "|---|" in report
