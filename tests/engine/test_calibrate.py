"""Tests for the empirical cost-parameter calibration (Section 5.1)."""

import pytest

from repro.core.cost_model import CostParams
from repro.engine.calibrate import calibrate


@pytest.fixture(scope="module")
def report():
    return calibrate(sizes=(4_000, 8_000, 16_000), n_nodes=4)


class TestCalibration:
    def test_parameters_positive(self, report):
        params = report.params
        assert params.m > 0
        assert params.b > 0
        assert params.p > 0
        assert params.t > 0

    def test_merge_rate_near_configured(self, report):
        """The fitted m recovers the configured rate within the secondary
        costs the simulator layers on top (overheads, local reads)."""
        configured = CostParams().m
        assert report.params.m == pytest.approx(configured, rel=3.0)

    def test_transfer_rate_near_configured(self, report):
        configured = CostParams().t
        assert report.params.t == pytest.approx(configured, rel=3.0)

    def test_build_exceeds_probe(self, report):
        # The central observation behind the hash cost model.
        assert report.params.b > report.params.p

    def test_measurements_recorded(self, report):
        assert len(report.merge_points) == 3
        assert len(report.hash_points) == 3
        assert len(report.transfer_points) == 3
        for per_node, seconds in report.merge_points:
            assert per_node > 0
            assert seconds > 0
