"""Tests for the vertical-partitioning byte accounting."""

import numpy as np
import pytest

from repro import CellSet, Session


@pytest.fixture
def session():
    """Wide arrays (4 attributes) where the query needs only one."""
    rng = np.random.default_rng(41)
    session = Session(n_nodes=4, selectivity_hint=0.4)
    for name, placement in (("A", "round_robin"), ("B", "block")):
        coords = np.unique(rng.integers(1, 65, size=(1500, 2)), axis=0)
        session.create_and_load(
            f"{name}<a1:int64, a2:float64, a3:float64, a4:float64>"
            f"[i=1,64,8, j=1,64,8]",
            CellSet(
                coords,
                {
                    "a1": rng.integers(0, 9, len(coords)),
                    "a2": rng.uniform(0, 1, len(coords)),
                    "a3": rng.uniform(0, 1, len(coords)),
                    "a4": rng.uniform(0, 1, len(coords)),
                },
            ),
            placement=placement,
        )
    return session


NARROW_QUERY = "SELECT A.a1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
WIDE_QUERY = (
    "SELECT A.a1, A.a2, A.a3, A.a4, B.a1, B.a2, B.a3, B.a4 "
    "FROM A, B WHERE A.i = B.i AND A.j = B.j"
)


class TestVerticalPartitioning:
    def test_narrow_query_ships_fraction_of_full_width(self, session):
        report = session.execute(NARROW_QUERY, planner="mbh").report
        assert report.bytes_moved > 0
        # Rows are 6 columns wide (2 dims + 4 attrs); the narrow query
        # ships coords + at most 1 attribute per side: <= 3/6 + slack.
        ratio = report.bytes_moved / report.bytes_moved_full_width
        assert ratio <= 0.55

    def test_wide_query_approaches_full_width(self, session):
        report = session.execute(WIDE_QUERY, planner="mbh").report
        ratio = report.bytes_moved / report.bytes_moved_full_width
        assert ratio >= 0.95

    def test_narrow_ships_fewer_bytes_than_wide(self, session):
        narrow = session.execute(NARROW_QUERY, planner="mbh").report
        wide = session.execute(WIDE_QUERY, planner="mbh").report
        assert narrow.cells_moved == wide.cells_moved  # same cells...
        assert narrow.bytes_moved < 0.6 * wide.bytes_moved  # ...fewer bytes

    def test_no_movement_no_bytes(self, session):
        rng = np.random.default_rng(42)
        coords = np.unique(rng.integers(1, 65, size=(500, 2)), axis=0)
        # C colocated with itself-shaped copy via identical placement.
        for name in ("C", "D"):
            session.create_and_load(
                f"{name}<x:int64>[i=1,64,8, j=1,64,8]",
                CellSet(coords, {"x": rng.integers(0, 9, len(coords))}),
                placement="round_robin",
            )
        report = session.execute(
            "SELECT C.x FROM C, D WHERE C.i = D.i AND C.j = D.j",
            planner="mbh",
        ).report
        assert report.cells_moved == 0
        assert report.bytes_moved == 0
