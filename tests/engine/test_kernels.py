"""Tests for the packed-key match kernels (repro.engine.kernels).

The contract: every kernel returns the same match *multiset* as the
reference numpy implementation, ``resolve_kernel`` never silently runs
a kernel the host can't provide, and the membership filter is a pure
prefilter — false positives allowed, false negatives never.
"""

import numpy as np
import pytest

from repro.engine.kernels import (
    HAVE_NUMBA,
    KERNELS,
    build_key_filter,
    filter_log2_for,
    packed_match,
    packed_match_sorted,
    probe_key_filter,
    resolve_kernel,
)
from repro.errors import ExecutionError


class TestResolveKernel:
    def test_auto_and_none_resolve_to_available(self):
        expected = "numba" if HAVE_NUMBA else "numpy"
        assert resolve_kernel(None) == expected
        assert resolve_kernel("auto") == expected

    def test_numpy_always_resolves(self):
        assert resolve_kernel("numpy") == "numpy"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ExecutionError, match="unknown kernel"):
            resolve_kernel("fortran")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_explicit_numba_without_numba_raises(self):
        # The host (container default) has no numba: asking for the
        # compiled kernel explicitly must fail loudly, not silently
        # benchmark numpy.
        with pytest.raises(ExecutionError, match="numba is not installed"):
            resolve_kernel("numba")

    def test_kernels_knob_values(self):
        assert KERNELS == ("auto", "numba", "numpy")


def _available_kernels():
    return ("numpy", "numba") if HAVE_NUMBA else ("numpy",)


def _pairs(left_idx, right_idx):
    return set(zip(left_idx.tolist(), right_idx.tolist()))


class TestPackedMatchSorted:
    @pytest.mark.parametrize("kernel", _available_kernels())
    def test_matches_unsorted_reference(self, rng, kernel):
        left = np.sort(rng.integers(0, 50, size=200, dtype=np.uint64))
        right = np.sort(rng.integers(0, 50, size=150, dtype=np.uint64))
        got = packed_match_sorted(left, right, kernel)
        ref = packed_match(left, right, "numpy")
        assert _pairs(*got) == _pairs(*ref)

    @pytest.mark.parametrize("kernel", _available_kernels())
    def test_duplicate_runs_emit_cross_product(self, kernel):
        left = np.array([3, 3, 7], dtype=np.uint64)
        right = np.array([3, 3, 3, 9], dtype=np.uint64)
        li, ri = packed_match_sorted(left, right, kernel)
        assert _pairs(li, ri) == {
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)
        }

    @pytest.mark.parametrize("kernel", _available_kernels())
    def test_empty_sides(self, kernel):
        empty = np.empty(0, dtype=np.uint64)
        some = np.array([1, 2], dtype=np.uint64)
        for left, right in ((empty, some), (some, empty), (empty, empty)):
            li, ri = packed_match_sorted(left, right, kernel)
            assert li.size == 0 and ri.size == 0

    def test_unresolved_kernel_rejected(self):
        keys = np.array([1], dtype=np.uint64)
        with pytest.raises(ExecutionError, match="resolved kernel"):
            packed_match_sorted(keys, keys, "auto")

    def test_disjoint_ranges_no_matches(self):
        left = np.arange(0, 10, dtype=np.uint64)
        right = np.arange(100, 110, dtype=np.uint64)
        li, ri = packed_match_sorted(left, right, "numpy")
        assert li.size == 0


class TestKeyFilter:
    def test_no_false_negatives(self, rng):
        keys = rng.integers(0, 1 << 40, size=500, dtype=np.uint64)
        log2 = filter_log2_for(keys.size)
        filt = build_key_filter(keys, log2)
        assert np.all(probe_key_filter(keys, filt, log2) == 1)

    def test_absent_keys_mostly_rejected(self, rng):
        present = rng.integers(0, 1 << 40, size=500, dtype=np.uint64)
        absent = rng.integers(1 << 41, 1 << 42, size=2000, dtype=np.uint64)
        log2 = filter_log2_for(present.size)
        filt = build_key_filter(present, log2)
        false_positives = int(probe_key_filter(absent, filt, log2).sum())
        # ~32 bits/key keeps the FP rate a few percent; allow 10x slack.
        assert false_positives < absent.size * 0.2

    def test_filter_log2_bounds(self):
        assert filter_log2_for(0) == 16
        assert filter_log2_for(1) == 16
        assert 16 <= filter_log2_for(150_000) <= 24
        assert filter_log2_for(10**9) == 24

    def test_prefiltered_match_equals_full_match(self, rng):
        # The adaptive worker path: filter left needles, match only the
        # candidates, map back. Must equal the unfiltered match exactly.
        left = np.sort(rng.integers(0, 1 << 30, size=400, dtype=np.uint64))
        right = np.sort(
            np.concatenate(
                [left[::50], rng.integers(0, 1 << 30, size=300).astype(np.uint64)]
            )
        )
        log2 = filter_log2_for(right.size)
        filt = build_key_filter(right, log2)
        candidates = np.nonzero(probe_key_filter(left, filt, log2))[0]
        li, ri = packed_match_sorted(left[candidates], right, "numpy")
        got = _pairs(candidates[li], ri)
        assert got == _pairs(*packed_match_sorted(left, right, "numpy"))
