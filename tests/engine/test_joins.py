"""Unit tests for the three join algorithms (Section 3.2).

All three matchers must produce identical match multisets; merge
additionally requires sorted inputs, and nested loop is guarded against
absurd comparison counts.
"""

import numpy as np
import pytest

from repro.adm.cells import composite_key
from repro.engine.joins import (
    MAX_NESTED_LOOP_COMPARISONS,
    hash_join_match,
    match_pairs,
    merge_join_match,
    nested_loop_match,
)
from repro.errors import ExecutionError


def keys_from(values):
    return composite_key([np.asarray(values, dtype=np.int64)])


def as_pair_multiset(left_values, right_values, li, ri):
    return sorted(zip(np.asarray(left_values)[li], np.asarray(right_values)[ri]))


def brute_force(left_values, right_values):
    pairs = []
    for i, lv in enumerate(left_values):
        for j, rv in enumerate(right_values):
            if lv == rv:
                pairs.append((lv, rv))
    return sorted(pairs)


MATCHERS = {
    "hash": hash_join_match,
    "nested_loop": nested_loop_match,
}


class TestAgainstBruteForce:
    @pytest.mark.parametrize("name", ["hash", "nested_loop"])
    def test_random_unsorted(self, name, rng):
        left = rng.integers(0, 20, 80)
        right = rng.integers(0, 20, 60)
        li, ri = MATCHERS[name](keys_from(left), keys_from(right))
        assert as_pair_multiset(left, right, li, ri) == brute_force(left, right)

    def test_merge_on_sorted(self, rng):
        left = np.sort(rng.integers(0, 20, 80))
        right = np.sort(rng.integers(0, 20, 60))
        li, ri = merge_join_match(keys_from(left), keys_from(right))
        assert as_pair_multiset(left, right, li, ri) == brute_force(left, right)

    def test_duplicates_fan_out(self):
        left = [3, 3, 3]
        right = [3, 3]
        for matcher in (hash_join_match, nested_loop_match):
            li, ri = matcher(keys_from(left), keys_from(right))
            assert len(li) == 6

    def test_composite_keys(self, rng):
        left_a = rng.integers(0, 5, 50)
        left_b = rng.integers(0, 5, 50)
        right_a = rng.integers(0, 5, 50)
        right_b = rng.integers(0, 5, 50)
        lk = composite_key([left_a, left_b])
        rk = composite_key([right_a, right_b])
        li, ri = hash_join_match(lk, rk)
        expected = sum(
            1
            for i in range(50)
            for j in range(50)
            if left_a[i] == right_a[j] and left_b[i] == right_b[j]
        )
        assert len(li) == expected
        assert (left_a[li] == right_a[ri]).all()
        assert (left_b[li] == right_b[ri]).all()

    def test_float_keys(self):
        left = composite_key([np.array([1.5, 2.5, np.pi])])
        right = composite_key([np.array([np.pi, 9.0, 1.5])])
        li, ri = hash_join_match(left, right)
        assert len(li) == 2


class TestEdgeCases:
    @pytest.mark.parametrize("name", ["hash", "merge", "nested_loop"])
    def test_empty_sides(self, name):
        empty = keys_from([])
        some = keys_from([1, 2, 3])
        for left, right in ((empty, some), (some, empty), (empty, empty)):
            li, ri = match_pairs(name, left, right)
            assert len(li) == 0
            assert len(ri) == 0

    def test_no_matches(self):
        li, ri = hash_join_match(keys_from([1, 2]), keys_from([3, 4]))
        assert len(li) == 0

    def test_all_match_single_value(self):
        li, ri = hash_join_match(keys_from([7] * 4), keys_from([7] * 5))
        assert len(li) == 20

    def test_unknown_algorithm(self):
        with pytest.raises(ExecutionError):
            match_pairs("sort_merge", keys_from([1]), keys_from([1]))


class TestMergeRequirements:
    def test_unsorted_left_rejected(self):
        with pytest.raises(ExecutionError):
            merge_join_match(keys_from([2, 1]), keys_from([1, 2]))

    def test_unsorted_right_rejected(self):
        with pytest.raises(ExecutionError):
            merge_join_match(keys_from([1, 2]), keys_from([2, 1]))

    def test_composite_lexicographic_order_accepted(self):
        left = composite_key([np.array([1, 1, 2]), np.array([1, 5, 0])])
        right = composite_key([np.array([1, 2]), np.array([5, 0])])
        li, ri = merge_join_match(left, right)
        assert len(li) == 2


class TestNestedLoopGuard:
    def test_guard_trips(self):
        n = int(np.sqrt(MAX_NESTED_LOOP_COMPARISONS)) + 2
        fake = np.empty(n, dtype=[("k0", np.int64)])
        with pytest.raises(ExecutionError):
            nested_loop_match(fake, fake)

    def test_blocking_matches_unblocked(self, rng):
        left = rng.integers(0, 10, 300)
        right = rng.integers(0, 10, 200)
        small_blocks = nested_loop_match(
            keys_from(left), keys_from(right), block_rows=7
        )
        one_block = nested_loop_match(
            keys_from(left), keys_from(right), block_rows=10_000
        )
        assert sorted(zip(*small_blocks)) == sorted(zip(*one_block))


class TestHashBuildProbeAsymmetry:
    """The hash join builds over the smaller side and probes the larger;
    whichever side is the build side, matches must equal the merge join's."""

    @pytest.mark.parametrize("n_left,n_right", [(20, 200), (200, 20), (64, 64)])
    def test_parity_with_merge_join(self, n_left, n_right, rng):
        left = rng.integers(0, 30, n_left)
        right = rng.integers(0, 30, n_right)
        li, ri = hash_join_match(keys_from(left), keys_from(right))
        lo, ro = np.argsort(left, kind="stable"), np.argsort(right, kind="stable")
        mli, mri = merge_join_match(
            keys_from(np.sort(left)), keys_from(np.sort(right))
        )
        assert as_pair_multiset(left, right, li, ri) == as_pair_multiset(
            np.sort(left), np.sort(right), mli, mri
        )
        # Indices reference the original (unsorted) inputs.
        assert (np.asarray(left)[li] == np.asarray(right)[ri]).all()

    def test_probe_side_duplicates_fan_out(self, rng):
        # Small build side with duplicates, large probe side with
        # duplicates: every cross pair of a matching key must appear.
        left = [5, 5, 9]
        right = [5] * 7 + [9] * 3 + [1] * 40
        li, ri = hash_join_match(keys_from(left), keys_from(right))
        assert len(li) == 2 * 7 + 1 * 3
        assert as_pair_multiset(left, right, li, ri) == brute_force(left, right)

    def test_swap_direction_symmetry(self, rng):
        big = rng.integers(0, 15, 300)
        small = rng.integers(0, 15, 25)
        li, ri = hash_join_match(keys_from(big), keys_from(small))
        ri2, li2 = hash_join_match(keys_from(small), keys_from(big))
        assert as_pair_multiset(big, small, li, ri) == as_pair_multiset(
            big, small, li2, ri2
        )
