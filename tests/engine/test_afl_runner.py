"""Tests for AFL parsing and execution."""

import numpy as np
import pytest

from repro.engine import ShuffleJoinExecutor
from repro.engine.afl_runner import AflRunner
from repro.errors import ExecutionError, ParseError
from repro.query.afl import parse_afl


class TestParseAfl:
    def test_bare_name_is_scan(self):
        node = parse_afl("A")
        assert node.op == "scan"
        assert node.args == ("A",)

    def test_paper_merge_redim(self):
        node = parse_afl(
            "merge(A, redim(B, <v1:int64, v2:float64>[i=1,6,3, j=1,6,3]))"
        )
        assert node.op == "mergeJoin"
        assert node.args[0] == "A"  # bare operand: implicit scan
        redim = node.args[1]
        assert redim.op == "redim"
        assert redim.args[1].dim_names == ("i", "j")

    def test_filter_expression(self):
        node = parse_afl("filter(A, v1 > 5)")
        assert node.op == "filter"
        assert node.args[1].render() == "(v1 > 5)"

    def test_hash_join_with_fields(self):
        node = parse_afl("hashJoin(hash(A, v1, v2), hash(B, v1, v2))")
        assert node.args[0].op == "hash"
        assert node.args[0].args[1:] == ("v1", "v2")

    def test_case_insensitive_aliases(self):
        assert parse_afl("MERGE(A, B)").op == "mergeJoin"
        assert parse_afl("redimension(A, <v:int64>[i=1,4,2])").op == "redim"

    def test_render_parse_roundtrip(self):
        text = "sort(rechunk(scan(A), <v:int64>[k=1,4,2]))"
        assert parse_afl(text).render() == text

    def test_unknown_operator(self):
        with pytest.raises(ParseError):
            parse_afl("teleport(A)")

    def test_unbalanced(self):
        with pytest.raises(ParseError):
            parse_afl("merge(A, B")


@pytest.fixture
def runner(small_cluster):
    executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
    return AflRunner(executor)


class TestRunnerUnaryOps:
    def test_scan(self, runner, small_cluster):
        result = runner.run("scan(A)")
        assert result.n_cells == small_cluster.array_cell_count("A")

    def test_paper_filter(self, runner):
        result = runner.run("filter(A, v1 > 5)")
        assert (result.cells().attrs["v1"] > 5).all()

    def test_project(self, runner):
        result = runner.run("project(A, v1)")
        assert result.schema.attr_names == ("v1",)

    def test_project_unknown(self, runner):
        with pytest.raises(ExecutionError):
            runner.run("project(A, nope)")

    def test_redim_composition(self, runner, small_cluster):
        result = runner.run(
            "redim(filter(A, v1 > 40), <v1:int64, i:int64, j:int64>[v2=0,49,10])"
        )
        assert result.schema.dim_names == ("v2",)
        assert result.n_cells > 0

    def test_sort(self, runner):
        result = runner.run("sort(A)")
        for chunk in result.chunks.values():
            assert chunk.cells.is_c_ordered()


class TestRunnerJoins:
    def test_merge_join_matches_aql(self, runner, small_cluster):
        afl_result = runner.run("merge(A, B)")
        executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        aql_result = executor.execute(
            "SELECT * FROM A, B WHERE A.i = B.i AND A.j = B.j",
            join_algo="merge",
        )
        assert afl_result.n_cells == aql_result.array.n_cells

    def test_hash_join_on_attributes(self, runner, small_cluster):
        result = runner.run("hashJoin(hash(A, v1), hash(B, v1))")
        from collections import Counter

        count_a = Counter(small_cluster.array_cells("A").attrs["v1"].tolist())
        count_b = Counter(small_cluster.array_cells("B").attrs["v1"].tolist())
        expected = sum(count_a[v] * count_b[v] for v in count_a)
        assert result.n_cells == expected

    def test_temporaries_cleaned_up(self, runner, small_cluster):
        before = set(small_cluster.catalog.array_names())
        runner.run("merge(A, B)")
        assert set(small_cluster.catalog.array_names()) == before

    def test_mismatched_fields_rejected(self, runner):
        with pytest.raises(ExecutionError):
            runner.run("hashJoin(hash(A, v1, v2), hash(B, v1))")


class TestCross:
    def test_cartesian_product(self, runner, small_cluster):
        result = runner.run("cross(filter(A, v1 = 0), filter(B, v1 = 0))")
        n_a = runner.run("filter(A, v1 = 0)").n_cells
        n_b = runner.run("filter(B, v1 = 0)").n_cells
        assert result.n_cells == n_a * n_b
        assert result.schema.is_dimensionless()
        assert "A_i" in result.schema.attr_names
        assert "B_v1" in result.schema.attr_names

    def test_guard_trips(self, runner):
        with pytest.raises(ExecutionError):
            runner.run("cross(A, cross(A, B))")
