"""Tests for the moving-window aggregate against a dense reference."""

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray, parse_schema
from repro.engine.aggregate import window
from repro.errors import ExecutionError
from repro.query import parse_expression
from repro.query.aql import AggregateItem


def dense_reference(array, radius, fn):
    """Brute-force windowed aggregate over the dense materialisation."""
    dense = array.to_dense("v", fill_value=np.nan)
    cells = array.cells()
    out = []
    for coord in cells.coords:
        i0, j0 = coord[0] - 1, coord[1] - 1
        lo_i, hi_i = max(i0 - radius, 0), min(i0 + radius, dense.shape[0] - 1)
        lo_j, hi_j = max(j0 - radius, 0), min(j0 + radius, dense.shape[1] - 1)
        block = dense[lo_i : hi_i + 1, lo_j : hi_j + 1]
        values = block[~np.isnan(block)]
        out.append(fn(values))
    return np.array(out)


@pytest.fixture
def sparse_grid(rng):
    coords = np.unique(rng.integers(1, 17, size=(120, 2)), axis=0)
    schema = parse_schema("W<v:float64>[i=1,16,8, j=1,16,8]")
    return LocalArray.from_cells(
        schema, CellSet(coords, {"v": rng.uniform(0, 10, len(coords))})
    )


def item(fn, alias):
    expr = None if fn == "count" else parse_expression("v")
    return AggregateItem(fn, expr, alias)


class TestWindowAggregate:
    @pytest.mark.parametrize(
        "fn,ref",
        [
            ("sum", np.sum),
            ("avg", np.mean),
            ("min", np.min),
            ("max", np.max),
            ("count", len),
        ],
    )
    def test_matches_dense_reference(self, sparse_grid, fn, ref):
        result = window(sparse_grid, [1, 1], [item(fn, "out")])
        expected = dense_reference(sparse_grid, 1, ref)
        np.testing.assert_allclose(result.cells().attrs["out"], expected)

    def test_radius_zero_is_identity(self, sparse_grid):
        result = window(
            sparse_grid, [0, 0], [item("sum", "s"), item("count", "n")]
        )
        cells = result.cells()
        np.testing.assert_allclose(
            cells.attrs["s"], sparse_grid.cells().attrs["v"]
        )
        assert (cells.attrs["n"] == 1).all()

    def test_larger_radius(self, sparse_grid):
        result = window(sparse_grid, [2, 2], [item("count", "n")])
        expected = dense_reference(sparse_grid, 2, len)
        np.testing.assert_array_equal(result.cells().attrs["n"], expected)

    def test_schema_keeps_dimensions(self, sparse_grid):
        result = window(sparse_grid, [1, 1], [item("avg", "m")])
        assert result.schema.dims == sparse_grid.schema.dims
        assert result.n_cells == sparse_grid.n_cells

    def test_bad_arity(self, sparse_grid):
        with pytest.raises(ExecutionError):
            window(sparse_grid, [1], [item("sum", "s")])
        with pytest.raises(ExecutionError):
            window(sparse_grid, [1, -1], [item("sum", "s")])
        with pytest.raises(ExecutionError):
            window(sparse_grid, [1, 1], [])

    def test_afl_surface(self, sparse_grid):
        from repro import Session

        session = Session(n_nodes=2)
        session.cluster.load_array(sparse_grid)
        result = session.afl("window(W, 1, 1, avg(v) AS smooth)")
        expected = dense_reference(sparse_grid, 1, np.mean)
        np.testing.assert_allclose(
            result.cells().attrs["smooth"], expected
        )
