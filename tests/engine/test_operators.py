"""Tests for the standalone redimension operator and explain()."""

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray, parse_schema
from repro.engine.executor import ShuffleJoinExecutor
from repro.engine.operators import redimension
from repro.errors import ExecutionError, SchemaError


@pytest.fixture
def flat_array():
    """The paper's redimension example: B<v1,v2,i>[j] -> <v1,v2>[i,j]."""
    schema = parse_schema("B<v1:int64, v2:float64, i:int64>[j=1,6,3]")
    cells = CellSet(
        np.array([[1], [2], [3], [4]]),
        {
            "v1": np.array([10, 20, 30, 40]),
            "v2": np.array([0.1, 0.2, 0.3, 0.4]),
            "i": np.array([1, 5, 2, 6]),
        },
    )
    return LocalArray.from_cells(schema, cells)


class TestRedimension:
    def test_paper_example(self, flat_array):
        target = parse_schema("B2<v1:int64, v2:float64>[i=1,6,3, j=1,6,3]")
        result = redimension(flat_array, target)
        assert result.schema == target
        assert result.n_cells == 4
        # Cell with i=5, j=2 must exist with its original values.
        cells = result.cells()
        index = np.flatnonzero(
            (cells.coords[:, 0] == 5) & (cells.coords[:, 1] == 2)
        )
        assert len(index) == 1
        assert cells.attrs["v1"][index[0]] == 20

    def test_dimension_to_attribute(self, flat_array):
        target = parse_schema("F<v1:int64, j:int64>[i=1,6,3]")
        result = redimension(flat_array, target)
        np.testing.assert_array_equal(
            np.sort(result.cells().attrs["j"]), [1, 2, 3, 4]
        )

    def test_roundtrip(self, flat_array):
        wide = redimension(
            flat_array, parse_schema("W<v1:int64, v2:float64>[i=1,6,3, j=1,6,3]")
        )
        back = redimension(
            wide, parse_schema("B<v1:int64, v2:float64, i:int64>[j=1,6,3]")
        )
        assert back.cells().same_cells(flat_array.cells())

    def test_missing_field_rejected(self, flat_array):
        with pytest.raises(SchemaError):
            redimension(flat_array, parse_schema("X<v1:int64>[zz=1,6,3]"))

    def test_out_of_range_rejected(self, flat_array):
        with pytest.raises(SchemaError):
            redimension(flat_array, parse_schema("X<v1:int64>[i=1,3,3]"))

    def test_float_attribute_cannot_become_dimension(self, flat_array):
        with pytest.raises(SchemaError):
            redimension(flat_array, parse_schema("X<v1:int64>[v2=1,6,3]"))

    def test_empty_array(self):
        schema = parse_schema("E<v:int64, i:int64>[j=1,4,2]")
        empty = LocalArray.empty(schema)
        result = redimension(empty, parse_schema("E2<v:int64>[i=1,4,2, j=1,4,2]"))
        assert result.n_cells == 0


class TestExplain:
    def test_logical_only(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        report = executor.explain(
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        assert report.join_kind == "D:D"
        assert report.chosen.join_algo == "merge"
        assert report.physical is None
        assert len(report.candidates) > 3
        costs = [cost for _, cost in report.candidates]
        assert costs == sorted(costs)
        assert "mergeJoin" in report.describe()

    def test_with_physical_planner(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        report = executor.explain(
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j",
            planner="mbh",
        )
        assert report.physical is not None
        assert report.n_units == 64
        assert "mbh" in report.describe()

    def test_join_algo_override(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        report = executor.explain(
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j",
            join_algo="hash",
        )
        assert report.chosen.join_algo == "hash"

    def test_filter_query_rejected(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster)
        with pytest.raises(ExecutionError):
            executor.explain("SELECT * FROM A WHERE v1 > 3")

    def test_explain_does_not_execute(self, small_cluster):
        """No output array appears in the catalog after explain."""
        executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        before = set(small_cluster.catalog.array_names())
        executor.explain(
            "SELECT A.v1 INTO Z<v1:int64>[] FROM A, B WHERE A.i = B.i",
            planner="tabu",
        )
        assert set(small_cluster.catalog.array_names()) == before
