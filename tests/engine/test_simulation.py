"""Unit tests for the simulated timing model."""

import pytest

from repro.core.cost_model import CostParams
from repro.engine.simulation import SimulationParams

SIM = SimulationParams()
COST = CostParams()


class TestSortTime:
    def test_zero_cells(self):
        assert SIM.sort_time(0) == 0.0

    def test_monotone_in_cells(self):
        assert SIM.sort_time(2000) > SIM.sort_time(1000)

    def test_more_chunks_cheaper(self):
        assert SIM.sort_time(10_000, n_chunks=100) < SIM.sort_time(10_000, 1)


class TestOutputTime:
    def test_zero(self):
        assert SIM.output_time(0) == 0.0

    def test_superlinear_in_chunk_population(self):
        # Per-cell cost grows when the same cells land in fewer chunks.
        packed = SIM.output_time(100_000, n_chunks=1)
        spread = SIM.output_time(100_000, n_chunks=1000)
        assert packed > spread


class TestCompareTime:
    def test_merge_linear(self):
        assert SIM.compare_time("merge", 100, 200, COST) == pytest.approx(
            COST.m * 300
        )

    def test_hash_builds_smaller_side(self):
        time_ab = SIM.compare_time("hash", 100, 900, COST)
        assert time_ab == pytest.approx(COST.b * 100 + COST.p * 900)
        # Symmetric in the arguments.
        assert time_ab == SIM.compare_time("hash", 900, 100, COST)

    def test_build_costs_more_than_probe(self):
        balanced = SIM.compare_time("hash", 500, 500, COST)
        skewed = SIM.compare_time("hash", 10, 990, COST)
        assert skewed < balanced

    def test_nested_loop_quadratic(self):
        base = SIM.compare_time("nested_loop", 100, 100, COST)
        assert SIM.compare_time("nested_loop", 200, 200, COST) == pytest.approx(
            4 * base
        )

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            SIM.compare_time("sort_merge", 1, 1, COST)
