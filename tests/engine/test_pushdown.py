"""Tests for predicate pushdown in join queries."""

from collections import Counter

import numpy as np
import pytest

from repro import CellSet, Session
from repro.errors import ParseError
from repro.query import parse_aql


@pytest.fixture
def session():
    rng = np.random.default_rng(31)
    session = Session(n_nodes=4, selectivity_hint=0.3)
    for name, placement in (("A", "round_robin"), ("B", "block")):
        coords = np.unique(rng.integers(1, 65, size=(2000, 2)), axis=0)
        session.create_and_load(
            f"{name}<v:int64, w:int64>[i=1,64,8, j=1,64,8]",
            CellSet(
                coords,
                {
                    "v": rng.integers(0, 100, len(coords)),
                    "w": rng.integers(0, 100, len(coords)),
                },
            ),
            placement=placement,
        )
    return session


class TestParsing:
    def test_filter_split_from_join_predicates(self):
        query = parse_aql(
            "SELECT A.v FROM A, B "
            "WHERE A.i = B.i AND A.j = B.j AND A.v > 50 AND B.w < 10"
        )
        assert len(query.predicates) == 2
        assert set(query.filters) == {"A", "B"}
        assert query.filters["A"].render() == "(A.v > 50)"

    def test_multiple_filters_same_array_combined(self):
        query = parse_aql(
            "SELECT A.v FROM A, B WHERE A.i = B.i AND A.v > 10 AND A.v < 20"
        )
        assert query.filters["A"].render() == "((A.v > 10) AND (A.v < 20))"

    def test_same_array_equality_is_filter(self):
        query = parse_aql(
            "SELECT A.v FROM A, B WHERE A.i = B.i AND A.v = A.w"
        )
        assert len(query.predicates) == 1
        assert "A" in query.filters

    def test_join_only_clause_has_no_filters(self):
        query = parse_aql("SELECT A.v FROM A, B WHERE A.i = B.i")
        assert query.filters == {}

    def test_unattributable_conjunct_rejected(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT A.v FROM A, B WHERE A.i = B.i AND v > 5")

    def test_cross_array_inequality_rejected(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT A.v FROM A, B WHERE A.i = B.i AND A.v > B.w")

    def test_filter_only_clause_rejected(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT A.v FROM A, B WHERE A.v > 5")

    def test_unknown_array_prefix_rejected(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT A.v FROM A, B WHERE A.i = B.i AND Z.v > 5")


class TestExecution:
    QUERY = (
        "SELECT A.v, B.w FROM A, B "
        "WHERE A.i = B.i AND A.j = B.j AND A.v > 60 AND B.w < 40"
    )

    def brute_force(self, session):
        a = session.array("A").cells()
        b = session.array("B").cells()
        kept_a = {
            tuple(c) for c, v in zip(a.coords, a.attrs["v"]) if v > 60
        }
        kept_b = {
            tuple(c) for c, w in zip(b.coords, b.attrs["w"]) if w < 40
        }
        return len(kept_a & kept_b)

    def test_count_matches_brute_force(self, session):
        result = session.execute(self.QUERY, planner="mbh")
        assert result.array.n_cells == self.brute_force(session)

    def test_output_respects_filters(self, session):
        result = session.execute(self.QUERY, planner="tabu")
        cells = result.cells
        assert (cells.attrs["v"] > 60).all()
        assert (cells.attrs["w"] < 40).all()

    def test_pushdown_reduces_traffic(self, session):
        unfiltered = session.execute(
            "SELECT A.v, B.w FROM A, B WHERE A.i = B.i AND A.j = B.j",
            planner="mbh",
        )
        filtered = session.execute(self.QUERY, planner="mbh")
        assert filtered.report.cells_moved < 0.75 * unfiltered.report.cells_moved

    def test_filter_to_empty(self, session):
        result = session.execute(
            "SELECT A.v FROM A, B WHERE A.i = B.i AND A.v > 1000",
            planner="mbh",
        )
        assert result.array.n_cells == 0

    def test_multijoin_pushdown(self, session):
        rng = np.random.default_rng(32)
        coords = np.unique(rng.integers(1, 65, size=(800, 2)), axis=0)
        session.create_and_load(
            "C<v:int64, w:int64>[i=1,64,8, j=1,64,8]",
            CellSet(
                coords,
                {
                    "v": rng.integers(0, 100, len(coords)),
                    "w": rng.integers(0, 100, len(coords)),
                },
            ),
        )
        result = session.execute(
            "SELECT A.v, C.w FROM A, B, C "
            "WHERE A.v = B.v AND B.w = C.w AND A.v > 80",
            planner="mbh",
        )
        a = session.array("A").cells().attrs["v"]
        b = session.array("B").cells()
        c = session.array("C").cells().attrs["w"]
        count_a = Counter(int(v) for v in a if v > 80)
        count_c = Counter(c.tolist())
        expected = sum(
            count_a[int(bv)] * count_c[int(bw)]
            for bv, bw in zip(b.attrs["v"], b.attrs["w"])
        )
        assert result.array.n_cells == expected
        assert (result.cells.attrs["v"] > 80).all()
