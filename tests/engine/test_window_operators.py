"""Tests for between / subarray / regrid."""

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray, parse_schema
from repro.engine.operators import between, regrid, subarray
from repro.errors import SchemaError
from repro.query import parse_expression
from repro.query.aql import AggregateItem


@pytest.fixture
def grid():
    """An 8x8 dense grid with v = 10*i + j."""
    coords = np.stack(
        np.meshgrid(np.arange(1, 9), np.arange(1, 9), indexing="ij"), axis=-1
    ).reshape(-1, 2)
    v = coords[:, 0] * 10 + coords[:, 1]
    schema = parse_schema("G<v:int64>[i=1,8,4, j=1,8,4]")
    return LocalArray.from_cells(schema, CellSet(coords, {"v": v}))


class TestBetween:
    def test_keeps_box(self, grid):
        result = between(grid, (3, 3), (5, 6))
        cells = result.cells()
        assert len(cells) == 3 * 4
        assert cells.coords[:, 0].min() >= 3
        assert cells.coords[:, 1].max() <= 6

    def test_schema_unchanged(self, grid):
        assert between(grid, (1, 1), (2, 2)).schema == grid.schema

    def test_full_box_identity(self, grid):
        assert between(grid, (1, 1), (8, 8)).cells().same_cells(grid.cells())

    def test_empty_window(self, grid):
        with pytest.raises(SchemaError):
            between(grid, (5, 5), (3, 3))

    def test_wrong_arity(self, grid):
        with pytest.raises(SchemaError):
            between(grid, (1,), (8, 8))


class TestSubarray:
    def test_shifts_to_origin(self, grid):
        result = subarray(grid, (3, 4), (5, 7))
        cells = result.cells()
        assert cells.coords[:, 0].min() == 1
        assert cells.coords[:, 1].min() == 1
        assert result.schema.dim("i").extent == 3
        assert result.schema.dim("j").extent == 4

    def test_values_travel(self, grid):
        result = subarray(grid, (3, 4), (5, 7))
        cells = result.cells()
        # Cell now at (1, 1) was originally (3, 4): v = 34.
        index = np.flatnonzero(
            (cells.coords[:, 0] == 1) & (cells.coords[:, 1] == 1)
        )
        assert cells.attrs["v"][index[0]] == 34


class TestRegrid:
    def test_counts_per_block(self, grid):
        result = regrid(
            grid, (4, 4), [AggregateItem("count", None, "n")]
        )
        assert result.schema.dim("i").extent == 2
        assert result.n_cells == 4
        assert (result.cells().attrs["n"] == 16).all()

    def test_avg_blocks(self, grid):
        result = regrid(
            grid, (4, 4), [AggregateItem("avg", parse_expression("v"), "m")]
        )
        cells = result.cells()
        by_block = {
            tuple(c): m for c, m in zip(cells.coords, cells.attrs["m"])
        }
        # Block (1,1) covers i,j in 1..4: mean of 10i+j = 10*2.5 + 2.5.
        assert by_block[(1, 1)] == pytest.approx(27.5)
        assert by_block[(2, 2)] == pytest.approx(10 * 6.5 + 6.5)

    def test_uneven_blocks(self, grid):
        result = regrid(grid, (3, 8), [AggregateItem("count", None, "n")])
        assert result.schema.dim("i").extent == 3  # ceil(8/3)
        cells = result.cells()
        by_i = dict(zip(cells.coords[:, 0].tolist(), cells.attrs["n"]))
        assert by_i[1] == 24 and by_i[2] == 24 and by_i[3] == 16

    def test_bad_blocks(self, grid):
        with pytest.raises(SchemaError):
            regrid(grid, (4,), [AggregateItem("count", None, "n")])
        with pytest.raises(SchemaError):
            regrid(grid, (0, 4), [AggregateItem("count", None, "n")])


class TestAflSurface:
    @pytest.fixture
    def session(self, grid):
        from repro import Session

        session = Session(n_nodes=2)
        session.cluster.load_array(grid)
        return session

    def test_between(self, session):
        result = session.afl("between(G, 3, 3, 5, 6)")
        assert result.n_cells == 12

    def test_subarray(self, session):
        result = session.afl("subarray(G, 3, 4, 5, 7)")
        assert result.schema.dim("i").extent == 3

    def test_regrid(self, session):
        result = session.afl("regrid(G, 4, 4, avg(v) AS m, count(*) AS n)")
        assert result.n_cells == 4
        assert (result.cells().attrs["n"] == 16).all()

    def test_composition(self, session):
        result = session.afl(
            "regrid(between(G, 1, 1, 4, 8), 2, 2, sum(v) AS s)"
        )
        assert result.schema.dim("i").extent == 4
        assert result.n_cells == 8  # i-blocks 1..2 occupied, j-blocks 1..4

    def test_wrong_bounds_arity(self, session):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            session.afl("between(G, 1, 2, 3)")
