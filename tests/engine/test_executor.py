"""Integration tests for the shuffle join executor.

Every join's output is cross-checked against a brute-force reference
computed directly from the gathered source cells.
"""

from collections import Counter

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray, parse_schema
from repro.cluster import Cluster
from repro.core.planners import PLANNER_NAMES
from repro.engine import ShuffleJoinExecutor
from repro.errors import ExecutionError, PlanningError


def brute_force_dd_matches(cluster):
    """Coordinate-intersection multiset for a full D:D join of A and B."""
    a = cluster.array_cells("A")
    b = cluster.array_cells("B")
    count_a = Counter(map(tuple, a.coords))
    count_b = Counter(map(tuple, b.coords))
    return sum(count_a[c] * count_b[c] for c in count_a)


def brute_force_aa_matches(cluster, left_field, right_field):
    a = cluster.array_cells("A").attrs[left_field]
    b = cluster.array_cells("B").attrs[right_field]
    count_a = Counter(a.tolist())
    count_b = Counter(b.tolist())
    return sum(count_a[v] * count_b[v] for v in count_a)


DD_QUERY = (
    "SELECT A.v1 - B.v1 AS d1, A.v2 - B.v2 AS d2 "
    "FROM A, B WHERE A.i = B.i AND A.j = B.j"
)


class TestMergeJoinCorrectness:
    @pytest.mark.parametrize("planner", PLANNER_NAMES)
    def test_output_count_matches_brute_force(self, small_cluster, planner):
        executor = ShuffleJoinExecutor(
            small_cluster, selectivity_hint=0.5, ilp_time_budget_s=1.5
        )
        result = executor.execute(DD_QUERY, planner=planner)
        assert result.array.n_cells == brute_force_dd_matches(small_cluster)

    def test_output_values_correct(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        result = executor.execute(DD_QUERY, planner="mbh")
        cells = result.cells
        # Re-derive d1 for every output cell from the sources.
        a = small_cluster.array_cells("A")
        b = small_cluster.array_cells("B")
        va = {tuple(c): v for c, v in zip(a.coords, a.attrs["v1"])}
        vb = {tuple(c): v for c, v in zip(b.coords, b.attrs["v1"])}
        for coord, d1 in zip(cells.coords, cells.attrs["d1"]):
            key = tuple(coord)
            assert d1 == va[key] - vb[key]

    def test_output_schema(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        result = executor.execute(DD_QUERY, planner="mbh")
        schema = result.array.schema
        assert schema.dim_names == ("i", "j")
        assert schema.attr_names == ("d1", "d2")


class TestHashJoinCorrectness:
    AA_QUERY = (
        "SELECT A.i, A.j, B.i, B.j "
        "INTO T<ai:int64, aj:int64, bi:int64, bj:int64>[] "
        "FROM A, B WHERE A.v1 = B.v1"
    )

    @pytest.mark.parametrize("planner", ["baseline", "mbh", "tabu"])
    def test_output_count(self, small_cluster, planner):
        executor = ShuffleJoinExecutor(
            small_cluster, selectivity_hint=0.1, n_buckets=64
        )
        result = executor.execute(self.AA_QUERY, planner=planner, join_algo="hash")
        expected = brute_force_aa_matches(small_cluster, "v1", "v1")
        assert result.array.n_cells == expected

    def test_hash_and_merge_agree(self, small_cluster):
        """The same A:A query through hash buckets and through a
        redimension + merge join must produce identical outputs."""
        query = (
            "SELECT A.i INTO T<ai:int64>[] FROM A, B WHERE A.v1 = B.v1"
        )
        executor = ShuffleJoinExecutor(
            small_cluster, selectivity_hint=0.1, n_buckets=32
        )
        hash_result = executor.execute(query, planner="mbh", join_algo="hash")
        merge_result = executor.execute(query, planner="mbh", join_algo="merge")
        assert hash_result.cells.same_cells(merge_result.cells)


class TestReportContents:
    def test_phases_reported(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        result = executor.execute(DD_QUERY, planner="tabu")
        report = result.report
        assert report.plan_seconds > 0
        assert report.align_seconds >= 0
        assert report.compare_seconds > 0
        assert report.total_seconds == pytest.approx(
            report.plan_seconds + report.align_seconds + report.compare_seconds
        )
        assert report.join_algo == "merge"
        assert report.unit_kind == "chunk"
        assert "mergeJoin" in report.logical_afl
        assert report.output_cells == result.array.n_cells

    def test_traffic_accounting(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        result = executor.execute(DD_QUERY, planner="mbh")
        report = result.report
        assert sum(report.cells_sent.values()) == report.cells_moved
        assert sum(report.cells_received.values()) == report.cells_moved

    def test_colocated_arrays_move_nothing(self, dd_pair):
        cluster = Cluster(n_nodes=4)
        array_a, array_b = dd_pair
        cluster.load_array(array_a, placement="round_robin")
        cluster.load_array(array_b, placement="round_robin")
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.5)
        result = executor.execute(DD_QUERY, planner="mbh")
        assert result.report.cells_moved == 0
        assert result.report.align_seconds < 0.5


class TestSingleNode:
    def test_runs_without_physical_planner(self, dd_pair):
        cluster = Cluster(n_nodes=1)
        for array in dd_pair:
            cluster.load_array(array)
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.5)
        result = executor.execute(DD_QUERY)
        assert result.physical_plan is None
        assert result.report.planner == "single-node"
        assert result.report.align_seconds >= 0
        assert result.array.n_cells == brute_force_dd_matches(cluster)

    def test_nested_loop_allowed_single_node(self, dd_pair):
        cluster = Cluster(n_nodes=1)
        for array in dd_pair:
            cluster.load_array(array)
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.5)
        result = executor.execute(DD_QUERY, join_algo="nested_loop")
        assert result.array.n_cells == brute_force_dd_matches(cluster)

    def test_nested_loop_distributed_rejected(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        with pytest.raises(PlanningError):
            executor.execute(DD_QUERY, join_algo="nested_loop")


class TestStoreResult:
    def test_result_registered(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        query = (
            "SELECT A.v1 INTO J<v1:int64>[] FROM A, B "
            "WHERE A.i = B.i AND A.j = B.j"
        )
        result = executor.execute(query, planner="mbh", store_result=True)
        assert small_cluster.catalog.exists("J")
        assert small_cluster.array_cell_count("J") == result.array.n_cells


class TestFilterPath:
    def test_filter_query(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster)
        filtered = executor.execute_filter("SELECT * FROM A WHERE v1 > 25")
        assert (filtered.cells().attrs["v1"] > 25).all()

    def test_join_query_rejected_on_filter_path(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster)
        with pytest.raises(ExecutionError):
            executor.execute_filter(DD_QUERY)

    def test_filter_rejected_on_join_path(self, small_cluster):
        executor = ShuffleJoinExecutor(small_cluster)
        with pytest.raises(ExecutionError):
            executor.execute("SELECT * FROM A WHERE v1 > 25")


class TestEmptyJoins:
    def test_disjoint_coordinates(self):
        cluster = Cluster(n_nodes=2)
        schema_a = parse_schema("A<v1:int64>[i=1,8,4, j=1,8,4]")
        schema_b = parse_schema("B<v1:int64>[i=1,8,4, j=1,8,4]")
        cluster.load_array(LocalArray.from_cells(
            schema_a,
            CellSet(np.array([[1, 1]]), {"v1": np.array([1])}),
        ))
        cluster.load_array(LocalArray.from_cells(
            schema_b,
            CellSet(np.array([[8, 8]]), {"v1": np.array([2])}),
        ))
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.1)
        result = executor.execute(
            "SELECT A.v1 - B.v1 AS d FROM A, B WHERE A.i = B.i AND A.j = B.j",
            planner="mbh",
        )
        assert result.array.n_cells == 0
        assert result.report.output_cells == 0
