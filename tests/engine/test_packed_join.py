"""Packed-key execution equivalence: the codec must never change results.

The structured composite key is the correctness oracle (the executor's
``packed_keys=False`` arm). Every combination of join algorithm,
physical planner, and serial/parallel execution must produce the same
multiset of output cells packed or structured — including workloads
that force the codec to decline (key wider than 64 bits) and the float
``-0.0`` edge case the bit-pattern keys exist for.
"""

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray, parse_schema
from repro.cluster import Cluster
from repro.engine import ShuffleJoinExecutor

PLANNERS = ("baseline", "mbh", "tabu", "ilp_coarse")

MERGE_QUERY = (
    "SELECT A.v1 - B.v1 AS d1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
)
HASH_QUERY = "SELECT A.v1, B.v2 FROM A, B WHERE A.v1 = B.v1"


def sorted_cell_bytes(result):
    cells = result.cells
    return np.sort(cells.to_structured(sorted(cells.attrs))).tobytes()


def make_executor(cluster, packed, workers=None):
    return ShuffleJoinExecutor(
        cluster,
        selectivity_hint=0.3,
        packed_keys=packed,
        n_workers=workers,
    )


class TestPackedEquivalence:
    @pytest.mark.parametrize("planner", PLANNERS)
    @pytest.mark.parametrize(
        "query,join_algo", [(MERGE_QUERY, "merge"), (HASH_QUERY, "hash")]
    )
    def test_serial_parallel_packed_agree(
        self, small_cluster, planner, query, join_algo
    ):
        reference = make_executor(small_cluster, packed=False).execute(
            query, planner=planner, join_algo=join_algo
        )
        expected = sorted_cell_bytes(reference)
        for workers in (None, 3):
            executor = make_executor(small_cluster, packed=True, workers=workers)
            prepared = executor.prepare(query, join_algo=join_algo)
            assert prepared.slice_table.codec is not None
            result = prepared.execute(planner=planner)
            assert sorted_cell_bytes(result) == expected

    def test_nested_loop_single_node(self, dd_pair):
        cluster = Cluster(n_nodes=1)
        for array in dd_pair:
            cluster.load_array(array)
        expected = sorted_cell_bytes(
            make_executor(cluster, packed=False).execute(
                MERGE_QUERY, join_algo="nested_loop"
            )
        )
        result = make_executor(cluster, packed=True).execute(
            MERGE_QUERY, join_algo="nested_loop"
        )
        assert sorted_cell_bytes(result) == expected

    def test_packed_meta_reported(self, small_cluster):
        executor = make_executor(small_cluster, packed=True)
        result = executor.execute(HASH_QUERY, join_algo="hash")
        assert result.report.meta.get("packed_keys") is True
        assert result.report.meta.get("key_width", 0) > 0
        structured = make_executor(small_cluster, packed=False).execute(
            HASH_QUERY, join_algo="hash"
        )
        assert "packed_keys" not in structured.report.meta


class TestWidthOverflowFallback:
    WIDE_QUERY = (
        "SELECT A.v1, B.v2 FROM A, B "
        "WHERE A.v1 = B.v1 AND A.v2 = B.v2"
    )

    def _load_wide_pair(self, cluster):
        """Two arrays joining on (full-int64-range, small) attributes —
        64 + 4 bits cannot fit one lane, so plan_codec declines."""
        gen = np.random.default_rng(7)
        coords = np.unique(gen.integers(1, 17, size=(60, 2)), axis=0)
        extremes = np.array(
            [np.iinfo(np.int64).min, np.iinfo(np.int64).max, 0, -1, 1]
        )
        v1 = np.concatenate(
            [extremes, gen.integers(-5, 5, len(coords) - len(extremes))]
        )
        v2 = gen.integers(0, 4, len(coords))
        schema_text = "<v1:int64, v2:int64>[i=1,16,4, j=1,16,4]"
        for name in ("A", "B"):
            cluster.load_array(
                LocalArray.from_cells(
                    parse_schema(name + schema_text),
                    CellSet(coords, {"v1": v1, "v2": v2}),
                ),
                placement="round_robin",
            )

    @pytest.mark.parametrize("workers", [None, 2])
    def test_fallback_is_byte_identical(self, workers):
        cluster = Cluster(n_nodes=3)
        self._load_wide_pair(cluster)
        packed_on = make_executor(cluster, packed=True, workers=workers)
        prepared = packed_on.prepare(self.WIDE_QUERY, join_algo="hash")
        # The knob is on, but the layout does not fit: structured keys.
        assert prepared.slice_table.codec is None
        result = prepared.execute(planner="tabu")
        assert result.array.n_cells > 0
        on_bytes = sorted_cell_bytes(result)
        packed_off = make_executor(cluster, packed=False, workers=workers)
        off_bytes = sorted_cell_bytes(
            packed_off.execute(
                self.WIDE_QUERY, planner="tabu", join_algo="hash"
            )
        )
        assert on_bytes == off_bytes


class TestFloatKeys:
    def _load_float_pair(self, cluster):
        schema_a = parse_schema("A<f:float64, v1:int64>[i=1,16,4]")
        schema_b = parse_schema("B<f:float64, v2:int64>[i=1,16,4]")
        values_a = np.array([-0.0, 1.5, 2.5, -3.5, 9.0, 0.0])
        values_b = np.array([0.0, 1.5, -2.5, -3.5, 8.0, -0.0])
        for schema, name, values in (
            (schema_a, "v1", values_a),
            (schema_b, "v2", values_b),
        ):
            coords = np.arange(1, len(values) + 1).reshape(-1, 1)
            cluster.load_array(
                LocalArray.from_cells(
                    schema,
                    CellSet(
                        coords,
                        {
                            "f": values,
                            name: np.arange(len(values), dtype=np.int64),
                        },
                    ),
                ),
                placement="round_robin",
            )

    @pytest.mark.parametrize("packed", [True, False])
    def test_negative_zero_matches_positive_zero(self, packed):
        """Regression: ±0.0 must join under both key representations."""
        cluster = Cluster(n_nodes=2)
        self._load_float_pair(cluster)
        executor = make_executor(cluster, packed=packed)
        result = executor.execute(
            "SELECT A.v1, B.v2 FROM A, B WHERE A.f = B.f",
            join_algo="hash",
        )
        pairs = set(
            zip(
                result.cells.attrs["v1"].tolist(),
                result.cells.attrs["v2"].tolist(),
            )
        )
        # -0.0 == 0.0 (both directions), 1.5 == 1.5, -3.5 == -3.5;
        # 2.5 != -2.5, 9.0 != 8.0.
        assert pairs == {(0, 0), (0, 5), (5, 0), (5, 5), (1, 1), (3, 3)}

    def test_packed_and_structured_agree_on_floats(self):
        cluster = Cluster(n_nodes=2)
        self._load_float_pair(cluster)
        query = "SELECT A.v1, B.v2 FROM A, B WHERE A.f = B.f"
        outputs = {
            packed: sorted_cell_bytes(
                make_executor(cluster, packed=packed).execute(
                    query, join_algo="hash", planner="baseline"
                )
            )
            for packed in (True, False)
        }
        assert outputs[True] == outputs[False]
