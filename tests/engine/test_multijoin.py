"""Integration tests for chained multi-join execution."""

from collections import Counter

import numpy as np
import pytest

from repro import CellSet, Session
from repro.engine.multijoin import MultiJoinResult
from repro.errors import ExecutionError, PlanningError


@pytest.fixture
def session():
    rng = np.random.default_rng(7)
    session = Session(n_nodes=4)

    def cells(n, extent=64, k_range=30):
        coords = np.unique(rng.integers(1, extent + 1, size=(n, 2)), axis=0)
        return CellSet(
            coords,
            {
                "k1": rng.integers(0, k_range, len(coords)),
                "k2": rng.integers(0, k_range, len(coords)),
            },
        )

    for name, n in (("A", 900), ("B", 300), ("C", 1500)):
        session.create_and_load(
            f"{name}<k1:int64, k2:int64>[i=1,64,8, j=1,64,8]", cells(n)
        )
    return session


def brute_force_chain(session):
    a = session.array("A").cells()
    b = session.array("B").cells()
    c = session.array("C").cells()
    count_a = Counter(a.attrs["k1"].tolist())
    count_c = Counter(c.attrs["k2"].tolist())
    return sum(
        count_a[k1] * count_c[k2]
        for k1, k2 in zip(b.attrs["k1"].tolist(), b.attrs["k2"].tolist())
    )


CHAIN_QUERY = (
    "SELECT A.k1, C.k2 FROM A, B, C WHERE A.k1 = B.k1 AND B.k2 = C.k2"
)


class TestChainedExecution:
    def test_count_matches_brute_force(self, session):
        result = session.execute(CHAIN_QUERY, planner="mbh")
        assert isinstance(result, MultiJoinResult)
        assert result.array.n_cells == brute_force_chain(session)

    def test_temporaries_cleaned_up(self, session):
        before = set(session.arrays())
        session.execute(CHAIN_QUERY, planner="mbh")
        assert set(session.arrays()) == before

    def test_stage_reports_present(self, session):
        result = session.execute(CHAIN_QUERY, planner="tabu")
        assert len(result.stage_results) == 2
        assert result.total_seconds > 0
        assert "join order" in result.describe()

    def test_output_columns_correct(self, session):
        """Every output row's (A.k1, C.k2) must equal some B row's keys."""
        result = session.execute(CHAIN_QUERY, planner="mbh")
        b = session.array("B").cells()
        b_pairs = set(zip(b.attrs["k1"].tolist(), b.attrs["k2"].tolist()))
        out = result.cells
        for k1, k2 in zip(out.attrs["k1"], out.attrs["k2"]):
            assert (int(k1), int(k2)) in b_pairs

    def test_expression_select(self, session):
        result = session.execute(
            "SELECT A.k1 + C.k2 AS s FROM A, B, C "
            "WHERE A.k1 = B.k1 AND B.k2 = C.k2",
            planner="mbh",
        )
        assert result.array.n_cells == brute_force_chain(session)
        assert "s" in result.cells.attr_names

    def test_select_star(self, session):
        result = session.execute(
            "SELECT * FROM A, B, C WHERE A.k1 = B.k1 AND B.k2 = C.k2",
            planner="mbh",
        )
        assert result.array.n_cells == brute_force_chain(session)
        # Qualified carries: dims and attrs of every source.
        for name in ("A_i", "A_k1", "B_k2", "C_j", "C_k2"):
            assert name in result.cells.attr_names

    def test_four_way_chain(self, session):
        rng = np.random.default_rng(8)
        coords = np.unique(rng.integers(1, 65, size=(500, 2)), axis=0)
        session.create_and_load(
            "D<k1:int64, k2:int64>[i=1,64,8, j=1,64,8]",
            CellSet(
                coords,
                {
                    "k1": rng.integers(0, 30, len(coords)),
                    "k2": rng.integers(0, 30, len(coords)),
                },
            ),
        )
        result = session.execute(
            "SELECT A.k1, D.k1 FROM A, B, C, D "
            "WHERE A.k1 = B.k1 AND B.k2 = C.k2 AND C.k1 = D.k1",
            planner="mbh",
        )
        # Reference via pandas-free triple loop over counters.
        a = Counter(session.array("A").cells().attrs["k1"].tolist())
        b = session.array("B").cells()
        c = session.array("C").cells()
        d = Counter(session.array("D").cells().attrs["k1"].tolist())
        c_by_k2 = Counter()
        for ck2, ck1 in zip(c.attrs["k2"].tolist(), c.attrs["k1"].tolist()):
            c_by_k2[(ck2, ck1)] += 1
        expected = 0
        for bk1, bk2 in zip(b.attrs["k1"].tolist(), b.attrs["k2"].tolist()):
            for (ck2, ck1), c_count in c_by_k2.items():
                if ck2 == bk2:
                    expected += a[bk1] * c_count * d[ck1]
        assert result.array.n_cells == expected

    def test_join_algo_pin_rejected(self, session):
        with pytest.raises(ExecutionError):
            session.execute(CHAIN_QUERY, join_algo="merge")

    def test_dimensioned_into_rejected(self, session):
        with pytest.raises(PlanningError):
            session.execute(
                "SELECT A.k1 INTO X<k1:int64>[z=1,8,2] FROM A, B, C "
                "WHERE A.k1 = B.k1 AND B.k2 = C.k2"
            )

    def test_output_name_from_into(self, session):
        result = session.execute(
            "SELECT A.k1 INTO Chain<ak1:int64>[] FROM A, B, C "
            "WHERE A.k1 = B.k1 AND B.k2 = C.k2",
            planner="mbh",
        )
        assert result.array.schema.name == "Chain"
        assert result.cells.attr_names == ("ak1",)
