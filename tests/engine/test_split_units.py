"""Skew splitting end to end: split plans never change results.

The ``split_units`` knob subdivides heavy join units — at plan time by
key-range cuts (``static``), plus at run time by zero-copy row-range
halving on the shared-memory path (``adaptive``). Whatever it decides,
the output must stay byte-identical to the unsplit serial reference
across join algorithms, planners, and execution backends; the knob is
plan-affecting, so it must separate plan-cache fingerprints.
"""

import numpy as np
import pytest

from repro.bench.experiments import make_cluster
from repro.bench.wallclock import HASH_QUERY, MERGE_QUERY
from repro.engine import ShuffleJoinExecutor
from repro.engine.parallel import shutdown_pools
from repro.errors import ExecutionError
from repro.workloads.synthetic import skewed_hash_pair, skewed_merge_pair

PLANNERS = ["baseline", "mbh", "tabu", "ilp_coarse"]

#: (split_units, parallel_mode, n_workers) execution backends to pit
#: against the unsplit serial reference.
CONFIGS = [
    ("static", "thread", 1),
    ("adaptive", "thread", 1),
    ("static", "thread", 4),
    ("static", "process", 4),
    ("adaptive", "process", 4),
]


def sorted_cell_bytes(result) -> bytes:
    packed = result.cells.to_structured(sorted(result.cells.attrs))
    return np.sort(packed).tobytes()


@pytest.fixture(scope="module")
def merge_cluster():
    """Chunk-unit workload: hot chunks hold many distinct keys, so the
    plan-time splitter has interior key boundaries to cut at."""
    array_a, array_b = skewed_merge_pair(1.5, cells_per_array=25_000, seed=5)
    return make_cluster([array_a, array_b], 4, seed=0)


@pytest.fixture(scope="module")
def hash_cluster():
    """Hash-bucket workload: each heavy bucket is one hot key, so the
    plan-time splitter declines and only the run-time re-splitter can
    break the straggler up."""
    array_a, array_b = skewed_hash_pair(1.5, cells_per_array=25_000, seed=5)
    return make_cluster([array_a, array_b], 4, seed=0, placement="block")


def _executor(cluster, selectivity, mode="thread", workers=1, **kwargs):
    kwargs.setdefault("packed_keys", True)
    return ShuffleJoinExecutor(
        cluster,
        selectivity_hint=selectivity,
        n_workers=workers,
        parallel_mode=mode,
        **kwargs,
    )


class TestSplitUnsplitEquivalence:
    @pytest.mark.parametrize("planner", PLANNERS)
    def test_merge_workload_all_backends(self, merge_cluster, planner):
        reference = _executor(merge_cluster, 0.25).execute(
            MERGE_QUERY, planner=planner, join_algo="merge"
        )
        expected = sorted_cell_bytes(reference)
        split_seen = 0
        for split, mode, workers in CONFIGS:
            executor = _executor(
                merge_cluster, 0.25, mode=mode, workers=workers,
                split_units=split,
            )
            result = executor.execute(
                MERGE_QUERY, planner=planner, join_algo="merge"
            )
            assert sorted_cell_bytes(result) == expected, (split, mode, workers)
            split_seen = max(
                split_seen, result.report.meta.get("units_split", 0)
            )
        # The hot chunks are multi-key: plan-time splitting must have
        # actually fired, or this test proved nothing.
        assert split_seen > 0

    @pytest.mark.parametrize("planner", PLANNERS)
    def test_hash_workload_all_backends(self, hash_cluster, planner):
        reference = _executor(hash_cluster, 0.0001, n_buckets=1024).execute(
            HASH_QUERY, planner=planner, join_algo="hash"
        )
        expected = sorted_cell_bytes(reference)
        for split, mode, workers in CONFIGS:
            executor = _executor(
                hash_cluster, 0.0001, mode=mode, workers=workers,
                split_units=split, n_buckets=1024,
            )
            result = executor.execute(
                HASH_QUERY, planner=planner, join_algo="hash"
            )
            assert sorted_cell_bytes(result) == expected, (split, mode, workers)

    def test_adaptive_resplits_the_hot_bucket(self, hash_cluster, monkeypatch):
        """The single-hot-key straggler defeats key-range cuts; the
        run-time row-halving must pick it up on the shm path."""
        import repro.engine.parallel as parallel

        # Adaptive dispatch gates itself off when the host grants a
        # single effective slot; pretend the CPUs are there so the
        # resplitter is exercised on any machine.
        monkeypatch.setattr(parallel, "available_cpus", lambda: 4)
        serial = _executor(hash_cluster, 0.0001, n_buckets=1024).execute(
            HASH_QUERY, planner="tabu", join_algo="hash"
        )
        adaptive = _executor(
            hash_cluster, 0.0001, mode="process", workers=4,
            split_units="adaptive", n_buckets=1024,
        ).execute(HASH_QUERY, planner="tabu", join_algo="hash")
        meta = adaptive.report.meta
        assert meta["runtime_resplits"] >= 1
        assert meta["steal_count"] >= 0
        assert sorted_cell_bytes(adaptive) == sorted_cell_bytes(serial)

    def test_single_slot_gates_adaptive_to_static(
        self, hash_cluster, monkeypatch
    ):
        """One effective worker slot cannot run split halves
        concurrently, so adaptive dispatch must fall back to the static
        split: zero re-splits, byte-identical output."""
        import repro.engine.parallel as parallel

        monkeypatch.setattr(parallel, "available_cpus", lambda: 1)
        serial = _executor(hash_cluster, 0.0001, n_buckets=1024).execute(
            HASH_QUERY, planner="tabu", join_algo="hash"
        )
        gated = _executor(
            hash_cluster, 0.0001, mode="process", workers=4,
            split_units="adaptive", n_buckets=1024,
        ).execute(HASH_QUERY, planner="tabu", join_algo="hash")
        meta = gated.report.meta
        assert meta["runtime_resplits"] == 0
        assert meta["steal_count"] == 0
        assert sorted_cell_bytes(gated) == sorted_cell_bytes(serial)

    def test_deep_resplit_tree_stays_byte_identical(
        self, hash_cluster, monkeypatch
    ):
        """Shrinking the re-split floor forces a many-level split tree;
        the order-tuple merge must still reassemble the exact output."""
        import repro.engine.parallel as parallel

        monkeypatch.setattr(parallel, "_RESPLIT_MIN_ROWS", 64)
        monkeypatch.setattr(parallel, "available_cpus", lambda: 4)
        serial = _executor(hash_cluster, 0.0001, n_buckets=1024).execute(
            HASH_QUERY, planner="tabu", join_algo="hash"
        )
        adaptive = _executor(
            hash_cluster, 0.0001, mode="process", workers=4,
            split_units="adaptive", n_buckets=1024,
        ).execute(HASH_QUERY, planner="tabu", join_algo="hash")
        assert adaptive.report.meta["runtime_resplits"] >= 3
        assert sorted_cell_bytes(adaptive) == sorted_cell_bytes(serial)

    def test_structured_fallback_declines_to_split(self, merge_cluster):
        """No packed key column means no key-range cuts: the structured
        path stays the byte-exact oracle with zero units split."""
        reference = _executor(merge_cluster, 0.25, packed_keys=False).execute(
            MERGE_QUERY, planner="tabu", join_algo="merge"
        )
        split = _executor(
            merge_cluster, 0.25, packed_keys=False, split_units="static"
        ).execute(MERGE_QUERY, planner="tabu", join_algo="merge")
        assert split.report.meta["units_split"] == 0
        assert sorted_cell_bytes(split) == sorted_cell_bytes(reference)


class TestKnobPlumbing:
    def test_invalid_split_knobs_rejected(self, merge_cluster):
        with pytest.raises(ExecutionError):
            _executor(merge_cluster, 0.25, split_units="sometimes")
        with pytest.raises(ExecutionError):
            _executor(merge_cluster, 0.25, split_threshold=0.0)
        with pytest.raises(ExecutionError):
            _executor(merge_cluster, 0.25, split_factor=1)

    def test_split_knobs_separate_fingerprints(self, merge_cluster):
        """split_units changes the physical plan, so unlike the pure
        execution-backend knobs it must NOT be fingerprint-neutral."""
        base = _executor(merge_cluster, 0.25)
        static = _executor(merge_cluster, 0.25, split_units="static")
        tuned = _executor(
            merge_cluster, 0.25, split_units="static", split_threshold=2.0
        )
        same = _executor(merge_cluster, 0.25)
        from repro.query.aql import parse_aql

        query = parse_aql(MERGE_QUERY)
        fp = {
            name: executor._plan_fingerprint(query, "tabu", "merge").key
            for name, executor in (
                ("base", base), ("static", static),
                ("tuned", tuned), ("same", same),
            )
        }
        assert fp["base"] == fp["same"]
        assert len({fp["base"], fp["static"], fp["tuned"]}) == 3

    def test_split_reported_in_plan_description(self, merge_cluster):
        executor = _executor(merge_cluster, 0.25, split_units="static")
        explained = executor.explain(
            MERGE_QUERY, planner="tabu", join_algo="merge"
        )
        assert explained.physical is not None
        assert "sub-units" in explained.physical.describe()


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_pools()
