"""Tests for the shared-memory arena (repro.engine.shm).

Lifecycle is the load-bearing concern: every segment an arena creates
must be gone from ``/dev/shm`` after release — including when an
execution dies mid-batch — and attached views must read exactly the
unit-sorted key material the coordinator wrote.
"""

import numpy as np
import pytest

from repro.engine.kernels import probe_key_filter
from repro.engine.shm import (
    ARENA_PREFIX,
    ArenaLayout,
    SharedArena,
    live_arena_names,
)


def _arena_inputs(rng, n_units=6, left_n=40, right_n=30, key_width=16):
    """Unit-major key columns + bounds tables, as the slice table builds."""
    left_units = np.sort(rng.integers(0, n_units, size=left_n))
    right_units = np.sort(rng.integers(0, n_units, size=right_n))
    left_keys = rng.integers(0, 1 << key_width, size=left_n, dtype=np.uint64)
    right_keys = rng.integers(0, 1 << key_width, size=right_n, dtype=np.uint64)
    left_bounds = np.concatenate(
        ([0], np.cumsum(np.bincount(left_units, minlength=n_units)))
    ).astype(np.int64)
    right_bounds = np.concatenate(
        ([0], np.cumsum(np.bincount(right_units, minlength=n_units)))
    ).astype(np.int64)
    return left_keys, right_keys, left_bounds, right_bounds, key_width


@pytest.fixture
def arena_inputs(rng):
    return _arena_inputs(rng)


class TestArenaLifecycle:
    def test_create_attach_release_unlink(self, arena_inputs):
        before = set(live_arena_names())
        arena = SharedArena.create(*arena_inputs)
        assert arena.layout.name.startswith(ARENA_PREFIX)
        assert set(live_arena_names()) - before == {arena.layout.name}

        attached = SharedArena.attach(arena.layout)
        assert np.array_equal(attached.left_keys, arena.left_keys)
        assert np.array_equal(attached.right_order, arena.right_order)
        attached.release()
        # A non-owner close must not unlink the segment.
        assert arena.layout.name in live_arena_names()

        arena.release()
        assert set(live_arena_names()) == before

    def test_release_is_idempotent(self, arena_inputs):
        arena = SharedArena.create(*arena_inputs)
        arena.release()
        arena.release()
        assert arena.closed

    def test_context_manager_releases(self, arena_inputs):
        with SharedArena.create(*arena_inputs) as arena:
            name = arena.layout.name
            assert name in live_arena_names()
        assert name not in live_arena_names()

    def test_dropped_reference_is_collected(self, arena_inputs):
        import gc

        before = set(live_arena_names())
        arena = SharedArena.create(*arena_inputs)
        name = arena.layout.name
        del arena
        gc.collect()
        assert name not in live_arena_names()
        assert set(live_arena_names()) == before

    def test_nbytes_covers_all_regions(self, arena_inputs):
        arena = SharedArena.create(*arena_inputs)
        layout = arena.layout
        expected = 8 * (
            2 * (layout.n_left + layout.n_right) + 2 * (layout.n_units + 1)
        ) + layout.filter_bytes
        assert layout.nbytes == expected
        assert arena.nbytes == expected
        arena.release()


class TestArenaContents:
    def test_fused_columns_sorted_and_order_maps_back(self, arena_inputs):
        left_keys, right_keys, left_bounds, right_bounds, width = arena_inputs
        arena = SharedArena.create(*arena_inputs)
        assert arena.layout.fused
        stored = np.asarray(arena.left_keys)
        # Globally ascending: unit ids ride the high bits.
        assert np.all(stored[:-1] <= stored[1:])
        # order maps sorted positions back to the original rows, and the
        # low bits of each stored key are the original key of that row.
        order = np.asarray(arena.left_order)
        mask = np.uint64((1 << width) - 1)
        assert np.array_equal(stored & mask, left_keys[order])
        # Per-unit bounds are preserved verbatim.
        assert np.array_equal(arena.left_bounds, left_bounds)
        assert np.array_equal(arena.right_bounds, right_bounds)
        arena.release()

    def test_unit_ranges_hold_their_units_rows(self, arena_inputs):
        left_keys, _, left_bounds, _, width = arena_inputs
        arena = SharedArena.create(*arena_inputs)
        stored = np.asarray(arena.left_keys)
        for unit in range(arena.layout.n_units):
            lo, hi = int(left_bounds[unit]), int(left_bounds[unit + 1])
            units_of = stored[lo:hi] >> np.uint64(width)
            assert np.all(units_of == unit)
        arena.release()

    def test_filter_has_no_false_negatives(self, arena_inputs):
        arena = SharedArena.create(*arena_inputs)
        layout = arena.layout
        assert layout.filter_log2 > 0
        hits = probe_key_filter(
            np.asarray(arena.right_keys), arena.right_filter,
            layout.filter_log2,
        )
        # Every key that went into the filter must probe positive.
        assert np.all(hits == 1)
        arena.release()

    def test_oversized_keys_fall_back_to_unfused(self, rng):
        left_keys, right_keys, lb, rb, _ = _arena_inputs(rng, key_width=16)
        arena = SharedArena.create(left_keys, right_keys, lb, rb, 64)
        # 64-bit keys leave no room for unit bits: raw per-unit-sorted
        # columns, no fusion, no membership filter.
        assert not arena.layout.fused
        assert arena.layout.filter_log2 == 0
        assert arena.layout.filter_bytes == 0
        for unit in range(arena.layout.n_units):
            lo, hi = int(lb[unit]), int(lb[unit + 1])
            segment = np.asarray(arena.left_keys)[lo:hi]
            assert np.all(segment[:-1] <= segment[1:]) if hi > lo else True
        arena.release()

    def test_mismatched_bounds_rejected(self, rng):
        left_keys, right_keys, lb, rb, width = _arena_inputs(rng)
        with pytest.raises(ValueError):
            SharedArena.create(left_keys, right_keys, lb, rb[:-1], width)


class TestLayoutRoundTrip:
    def test_layout_is_picklable_and_small(self, arena_inputs):
        import pickle

        arena = SharedArena.create(*arena_inputs)
        payload = pickle.dumps(arena.layout)
        assert len(payload) < 512
        restored = pickle.loads(payload)
        assert restored == arena.layout
        assert isinstance(restored, ArenaLayout)
        arena.release()
