"""Shared-memory process execution: equivalence, teardown, knobs.

The tentpole guarantee: ``mode="process"`` with the shared-memory arena
produces byte-identical sorted outputs to the serial reference and the
thread pool, across key representations, join algorithms, and planners
— and a worker that dies mid-batch leaves no segment behind in
``/dev/shm``.
"""

import numpy as np
import pytest

from repro.engine import ShuffleJoinExecutor
from repro.engine.kernels import HAVE_NUMBA
from repro.engine.parallel import shutdown_pools
from repro.engine.shm import live_arena_names
from repro.errors import ExecutionError

DD_QUERY = "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
AA_QUERY = (
    "SELECT A.i, A.j, B.i, B.j "
    "INTO T<ai:int64, aj:int64, bi:int64, bj:int64>[] "
    "FROM A, B WHERE A.v1 = B.v1"
)

PLANNERS = ["baseline", "mbh", "tabu", "ilp_coarse"]


def sorted_cell_bytes(result) -> bytes:
    packed = result.cells.to_structured(sorted(result.cells.attrs))
    return np.sort(packed).tobytes()


def _executor(cluster, mode, packed, workers=4, **kwargs):
    return ShuffleJoinExecutor(
        cluster,
        selectivity_hint=0.5,
        n_workers=workers,
        parallel_mode=mode,
        packed_keys=packed,
        **kwargs,
    )


class TestSerialThreadProcessEquivalence:
    """Satellite: serial == thread == process(shm) everywhere."""

    @pytest.mark.parametrize("packed", [True, False], ids=["packed", "structured"])
    @pytest.mark.parametrize(
        "algo,query", [("hash", AA_QUERY), ("merge", DD_QUERY)]
    )
    @pytest.mark.parametrize("planner", PLANNERS)
    def test_all_modes_byte_identical(
        self, small_cluster, planner, algo, query, packed
    ):
        serial = _executor(small_cluster, "thread", packed, workers=1)
        threaded = _executor(small_cluster, "thread", packed)
        process = _executor(small_cluster, "process", packed)
        assert process.shm or not packed  # shm defaults on in process mode

        reference = serial.execute(query, planner=planner, join_algo=algo)
        via_threads = threaded.execute(query, planner=planner, join_algo=algo)
        via_shm = process.execute(query, planner=planner, join_algo=algo)

        expected = sorted_cell_bytes(reference)
        assert sorted_cell_bytes(via_threads) == expected
        assert sorted_cell_bytes(via_shm) == expected
        assert (
            reference.report.output_cells
            == via_threads.report.output_cells
            == via_shm.report.output_cells
        )

    def test_shm_path_reports_its_backend(self, small_cluster):
        process = _executor(small_cluster, "process", True)
        result = process.execute(AA_QUERY, planner="tabu", join_algo="hash")
        meta = result.report.meta
        assert meta.get("parallel_mode") == "process"
        assert meta.get("shm") is True
        assert meta.get("kernel") == ("numba" if HAVE_NUMBA else "numpy")
        assert meta.get("shm_bytes", 0) > 0

    def test_repeated_shm_runs_byte_identical(self, small_cluster):
        process = _executor(small_cluster, "process", True)
        prepared = process.prepare(AA_QUERY, join_algo="hash")
        first = prepared.execute("tabu", n_workers=4)
        second = prepared.execute("tabu", n_workers=4)
        assert sorted_cell_bytes(first) == sorted_cell_bytes(second)

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed")
    def test_auto_kernel_falls_back_to_numpy(self, small_cluster):
        process = _executor(small_cluster, "process", True, kernel="auto")
        assert process.kernel == "numpy"
        result = process.execute(DD_QUERY, planner="baseline", join_algo="merge")
        assert result.report.meta.get("kernel") == "numpy"


class TestExceptionSafeTeardown:
    def test_killed_batch_leaks_no_segments(self, small_cluster, monkeypatch):
        """Fault injection: a worker batch raises mid-execution.

        The pool forks lazily, so patching the module-global
        ``execute_shm_batch`` *before* the first process execution (and
        after shutting any cached pools down) plants the fault inside
        the forked children as well as the in-process fallback.
        """
        shutdown_pools()
        before = set(live_arena_names())

        from repro.engine import parallel

        def boom(task):
            raise RuntimeError("injected mid-batch failure")

        monkeypatch.setattr(parallel, "execute_shm_batch", boom)
        process = _executor(small_cluster, "process", True)
        with pytest.raises(ExecutionError, match="injected mid-batch"):
            process.execute(AA_QUERY, planner="tabu", join_algo="hash")
        # Exception-safe teardown: segment unlinked, nothing left behind.
        assert set(live_arena_names()) == before

        monkeypatch.undo()
        shutdown_pools()
        # The engine recovers on the next execution with healthy pools.
        result = process.execute(AA_QUERY, planner="tabu", join_algo="hash")
        assert result.report.output_cells >= 0
        assert set(live_arena_names()) == before

    def test_release_arena_after_execution(self, small_cluster):
        process = _executor(small_cluster, "process", True)
        prepared = process.prepare(AA_QUERY, join_algo="hash")
        prepared.execute("tabu", n_workers=4)
        table = prepared.slice_table
        assert table._arena is not None
        name = table._arena.layout.name
        assert name in live_arena_names()
        table.release_arena()
        assert name not in live_arena_names()
        table.release_arena()  # idempotent


class TestKnobs:
    def test_shm_with_thread_mode_warns_and_disables(self, small_cluster):
        with pytest.warns(UserWarning, match="no effect"):
            executor = ShuffleJoinExecutor(
                small_cluster, selectivity_hint=0.5, shm=True,
                parallel_mode="thread",
            )
        assert executor.shm is False
        # Still executes fine on the thread path.
        result = executor.execute(DD_QUERY, planner="baseline")
        assert result.report.output_cells >= 0

    def test_shm_defaults_by_mode(self, small_cluster):
        threaded = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        forked = ShuffleJoinExecutor(
            small_cluster, selectivity_hint=0.5, parallel_mode="process"
        )
        assert threaded.shm is False
        assert forked.shm is True

    def test_unknown_mode_is_clear_execution_error(self, small_cluster):
        with pytest.raises(ExecutionError, match="unknown parallel mode"):
            ShuffleJoinExecutor(small_cluster, parallel_mode="greenlets")

    def test_kernel_and_shm_are_fingerprint_neutral(self, small_cluster):
        """Plan-cache fingerprints must ignore execution-backend knobs.

        The kernel and shm settings change how matches are computed,
        never what the plan or the output is — a cached plan must hit
        across backend changes.
        """
        base = ShuffleJoinExecutor(
            small_cluster, selectivity_hint=0.5, plan_cache_size=8
        )
        shm_proc = ShuffleJoinExecutor(
            small_cluster, selectivity_hint=0.5, plan_cache_size=8,
            parallel_mode="process", kernel="numpy", n_workers=4,
        )
        from repro.query.aql import parse_aql

        query = parse_aql(DD_QUERY)
        fp_base = base._plan_fingerprint(query, "tabu", "merge")
        fp_shm = shm_proc._plan_fingerprint(query, "tabu", "merge")
        assert fp_base == fp_shm
