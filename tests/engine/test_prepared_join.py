"""Tests for PreparedJoin: plan once, execute under many planners."""

import numpy as np
import pytest

from repro.engine import ShuffleJoinExecutor
from repro.errors import ExecutionError

QUERY = "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j"


@pytest.fixture
def executor(small_cluster):
    return ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)


class TestPreparedJoin:
    def test_prepare_exposes_plan_and_stats(self, executor):
        prepared = executor.prepare(QUERY)
        assert prepared.logical_plan.join_algo == "merge"
        assert prepared.stats.n_units == prepared.n_units
        assert prepared.logical_seconds >= 0

    def test_execute_matches_direct_path(self, executor):
        prepared = executor.prepare(QUERY)
        via_prepared = prepared.execute(planner="mbh")
        direct = executor.execute(QUERY, planner="mbh")
        assert via_prepared.array.n_cells == direct.array.n_cells
        assert via_prepared.cells.same_cells(direct.cells)
        assert via_prepared.report.cells_moved == direct.report.cells_moved

    def test_compare_planners_identical_outputs(self, executor):
        prepared = executor.prepare(QUERY)
        results = prepared.compare(["baseline", "mbh", "tabu"])
        assert set(results) == {"baseline", "mbh", "tabu"}
        reference = results["baseline"].cells
        for result in results.values():
            assert result.cells.same_cells(reference)
        # MBH never moves more cells than the baseline here.
        assert (
            results["mbh"].report.cells_moved
            <= results["baseline"].report.cells_moved
        )

    def test_repeated_execution_is_stable(self, executor):
        prepared = executor.prepare(QUERY)
        first = prepared.execute(planner="mbh")
        second = prepared.execute(planner="mbh")
        assert first.cells.same_cells(second.cells)
        assert first.report.cells_moved == second.report.cells_moved

    def test_join_algo_pin(self, executor):
        prepared = executor.prepare(QUERY, join_algo="hash")
        assert prepared.logical_plan.join_algo == "hash"
        result = prepared.execute(planner="tabu")
        assert result.report.join_algo == "hash"

    def test_filter_query_rejected(self, executor):
        with pytest.raises(ExecutionError):
            executor.prepare("SELECT * FROM A WHERE v1 > 3")
