"""Multiway pipeline acceleration: parallel stages and catalog hygiene.

The pipeline executor must produce byte-identical sorted outputs no
matter how each stage runs (serial / thread pool / shared-memory process
workers) and which physical planner places the units — and its
materialised intermediates must never leak into the catalog, bump a
version, or pollute the binary plan cache.
"""

from collections import Counter

import numpy as np
import pytest

from repro.bench.experiments import make_cluster
from repro.engine.executor import ShuffleJoinExecutor
from repro.engine.parallel import shutdown_pools
from repro.serve.fingerprint import array_token
from repro.workloads import (
    chain_arrays,
    chain_query,
    star_arrays,
    star_query,
)

PLANNERS = ("baseline", "mbh", "tabu", "ilp_coarse")


def chain_executor(
    n_arrays=3, alpha=1.0, cells=300, seed=11, n_nodes=4, **options
):
    arrays = chain_arrays(n_arrays, alpha, cells_per_array=cells, rng=seed)
    cluster = make_cluster(arrays, n_nodes, seed=seed, placement="block")
    return ShuffleJoinExecutor(cluster, **options), chain_query(n_arrays)


def sorted_bytes(result) -> bytes:
    cells = result.cells
    return np.sort(cells.to_structured(sorted(cells.attrs))).tobytes()


def brute_force_chain(cluster, n_arrays: int) -> int:
    """Reference row count for the chain workload: every foreign key of
    T(m) matches the own-key multiplicity of T(m+1), folded left."""
    first = cluster.array_cells("T0")
    total_by_key = Counter(first.attrs["k1"].tolist())
    for m in range(1, n_arrays):
        cells = cluster.array_cells(f"T{m}")
        own = cells.attrs[f"k{m}"].tolist()
        if m == n_arrays - 1:
            return sum(total_by_key[k] for k in own)
        nxt = Counter()
        for own_key, foreign in zip(own, cells.attrs[f"k{m + 1}"].tolist()):
            nxt[foreign] += total_by_key[own_key]
        total_by_key = nxt
    raise AssertionError("unreachable")


class TestParallelStages:
    @pytest.mark.parametrize("planner", PLANNERS)
    def test_serial_thread_process_identical(self, planner):
        executor, query = chain_executor(parallel_mode="thread")
        serial = executor.execute(query, planner=planner, use_cache=False)
        threaded = executor.execute(
            query, planner=planner, n_workers=3, use_cache=False
        )
        assert sorted_bytes(threaded) == sorted_bytes(serial)

    @pytest.mark.parametrize("planner", ("tabu", "mbh"))
    def test_process_shm_identical(self, planner):
        executor, query = chain_executor(parallel_mode="process", shm=True)
        serial = executor.execute(query, planner=planner, use_cache=False)
        try:
            parallel = executor.execute(
                query, planner=planner, n_workers=2, use_cache=False
            )
        finally:
            shutdown_pools()
        assert sorted_bytes(parallel) == sorted_bytes(serial)

    def test_worker_pool_threads_through_all_stages(self):
        executor, query = chain_executor(n_arrays=4, parallel_mode="thread")
        result = executor.execute(
            query, planner="tabu", n_workers=3, use_cache=False
        )
        assert len(result.stage_results) == 3
        # Every stage ran through the batched parallel path.
        assert all(
            stage.report.meta.get("parallel_mode") == "thread"
            for stage in result.stage_results
        )


class TestChainOracle:
    @pytest.mark.parametrize("n_arrays", (3, 4))
    @pytest.mark.parametrize("alpha", (0.0, 1.2))
    def test_chain_matches_brute_force(self, n_arrays, alpha):
        executor, query = chain_executor(n_arrays=n_arrays, alpha=alpha)
        result = executor.execute(query, planner="mbh", use_cache=False)
        expected = brute_force_chain(executor.cluster, n_arrays)
        assert result.array.n_cells == expected
        # The generators engineer exactly fanout matches per foreign key.
        assert expected == 300 * 2 ** (n_arrays - 1)

    def test_star_matches_fanout_invariant(self):
        arrays = star_arrays(2, 0.9, fact_cells=250, dim_cells=120, rng=4)
        cluster = make_cluster(arrays, 4, seed=4, placement="block")
        executor = ShuffleJoinExecutor(cluster)
        result = executor.execute(star_query(2), planner="tabu")
        assert result.array.n_cells == 250 * 4


class TestCatalogHygiene:
    def test_intermediates_never_touch_the_catalog(self):
        executor, query = chain_executor(n_arrays=4)
        cluster = executor.cluster
        names_before = set(cluster.catalog.array_names())
        state_before = {
            name: (
                cluster.catalog.entry(name).uid,
                cluster.catalog.entry(name).version,
                cluster.storage_epoch(name),
                array_token(cluster, name),
            )
            for name in names_before
        }
        executor.execute(query, planner="mbh", use_cache=False)
        assert set(cluster.catalog.array_names()) == names_before
        for name in names_before:
            assert state_before[name] == (
                cluster.catalog.entry(name).uid,
                cluster.catalog.entry(name).version,
                cluster.storage_epoch(name),
                array_token(cluster, name),
            )
        # No `_mj*` temporary survives on any node store.
        for node in cluster.nodes:
            leftovers = [
                name for name in node._stores if name.startswith("_mj")
            ]
            assert leftovers == []

    def test_store_result_registers_only_the_named_output(self):
        executor, query = chain_executor()
        into = query.replace(
            "SELECT T0.k0, T2.payload",
            "SELECT T0.k0, T2.payload INTO Out<k:int64, p:int64>[]",
        )
        before = set(executor.cluster.catalog.array_names())
        executor.execute(
            into, planner="mbh", use_cache=False, store_result=True
        )
        after = set(executor.cluster.catalog.array_names())
        assert after - before == {"Out"}

    def test_stages_do_not_pollute_binary_plan_cache(self):
        executor, query = chain_executor(plan_cache_size=8)
        executor.execute(query, planner="tabu")
        cache = executor.plan_cache
        # One entry: the whole-pipeline plan. Stage joins must not have
        # inserted their own per-stage entries.
        assert cache.stats()["entries"] == 1
