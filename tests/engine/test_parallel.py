"""Tests for the parallel join-unit execution engine.

The load-bearing property: for every planner × join algorithm × worker
count, parallel execution produces the same multiset of output cells
(byte-identical once sorted) and identical deterministic report
counters as the serial reference path.
"""

import numpy as np
import pytest

from repro.adm.cells import CellSet, composite_key
from repro.engine import ShuffleJoinExecutor
from repro.engine.joins import hash_join_match
from repro.engine.parallel import (
    PARALLEL_MODES,
    UnitBatch,
    _match_batch,
    hash_stacked_keys,
    resolve_workers,
    stack_packed_keys,
    stack_unit_keys,
)
from repro.errors import ExecutionError

DD_QUERY = "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
AA_QUERY = (
    "SELECT A.i, A.j, B.i, B.j "
    "INTO T<ai:int64, aj:int64, bi:int64, bj:int64>[] "
    "FROM A, B WHERE A.v1 = B.v1"
)


def sorted_cell_bytes(result) -> bytes:
    """Canonical sorted-cell byte string of a join output."""
    packed = result.cells.to_structured(sorted(result.cells.attrs))
    return np.sort(packed).tobytes()


@pytest.fixture
def executor(small_cluster):
    return ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)


class TestParallelMatchesSerial:
    """Satellite 4: parallel == serial across planners and algorithms."""

    @pytest.mark.parametrize("planner", ["baseline", "mbh", "tabu"])
    @pytest.mark.parametrize(
        "algo,query", [("hash", AA_QUERY), ("merge", DD_QUERY)]
    )
    @pytest.mark.parametrize("workers", [2, 4])
    def test_output_and_counters_identical(
        self, executor, planner, algo, query, workers
    ):
        prepared = executor.prepare(query, join_algo=algo)
        serial = prepared.execute(planner)
        parallel = prepared.execute(planner, n_workers=workers)
        assert sorted_cell_bytes(serial) == sorted_cell_bytes(parallel)
        rs, rp = serial.report, parallel.report
        assert rs.output_cells == rp.output_cells
        assert rs.compare_seconds == rp.compare_seconds
        assert rs.align_seconds == rp.align_seconds
        assert rs.cells_moved == rp.cells_moved
        assert rs.n_transfers == rp.n_transfers
        assert rs.bytes_moved == rp.bytes_moved
        assert np.array_equal(rs.per_node_compare, rp.per_node_compare)
        assert rs.cells_sent == rp.cells_sent
        assert rs.cells_received == rp.cells_received

    def test_hash_algo_on_dd_units(self, executor):
        prepared = executor.prepare(DD_QUERY, join_algo="hash")
        serial = prepared.execute("mbh")
        parallel = prepared.execute("mbh", n_workers=3)
        assert sorted_cell_bytes(serial) == sorted_cell_bytes(parallel)

    def test_repeated_parallel_runs_byte_identical(self, executor):
        prepared = executor.prepare(AA_QUERY, join_algo="hash")
        first = prepared.execute("tabu", n_workers=4)
        second = prepared.execute("tabu", n_workers=4)
        assert sorted_cell_bytes(first) == sorted_cell_bytes(second)

    def test_executor_level_default_workers(self, small_cluster):
        serial_ex = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        pooled_ex = ShuffleJoinExecutor(
            small_cluster, selectivity_hint=0.5, n_workers=2
        )
        serial = serial_ex.execute(DD_QUERY, planner="baseline")
        pooled = pooled_ex.execute(DD_QUERY, planner="baseline")
        assert sorted_cell_bytes(serial) == sorted_cell_bytes(pooled)

    def test_process_mode_matches_thread_mode(self, small_cluster):
        threaded = ShuffleJoinExecutor(
            small_cluster, selectivity_hint=0.5, n_workers=2
        )
        forked = ShuffleJoinExecutor(
            small_cluster, selectivity_hint=0.5, n_workers=2,
            parallel_mode="process",
        )
        via_threads = threaded.execute(DD_QUERY, planner="baseline")
        via_processes = forked.execute(DD_QUERY, planner="baseline")
        assert sorted_cell_bytes(via_threads) == sorted_cell_bytes(
            via_processes
        )


class TestWorkerKnobs:
    def test_resolve_workers_serial_values(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4

    def test_negative_workers_rejected(self):
        with pytest.raises(ExecutionError):
            resolve_workers(-2)

    def test_unknown_parallel_mode_rejected(self, small_cluster):
        with pytest.raises(ExecutionError):
            ShuffleJoinExecutor(small_cluster, parallel_mode="fibers")

    def test_modes_are_thread_and_process(self):
        assert set(PARALLEL_MODES) == {"thread", "process"}


def _batch_of(units, left_cols, right_cols):
    """A UnitBatch over single-column int64 keys, one entry per unit."""
    batch = UnitBatch(node=0)
    for unit, left, right in zip(units, left_cols, right_cols):
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        batch.add_unit(
            unit,
            CellSet(np.zeros((len(left), 1), dtype=np.int64), {}),
            CellSet(np.zeros((len(right), 1), dtype=np.int64), {}),
            [left],
            composite_key([left]),
            composite_key([right]),
        )
    return batch


class TestBatchedMatching:
    def test_stack_unit_keys_layout(self):
        keys = [composite_key([np.array([3, 4])]),
                composite_key([np.array([5])])]
        unit_column, fields = stack_unit_keys([7, 9], keys)
        assert unit_column.tolist() == [7, 7, 9]
        assert fields["k0"].tolist() == [3, 4, 5]

    def test_equal_rows_hash_equal_across_sides(self):
        units = np.array([2, 2, 5], dtype=np.int64)
        fields = {"k0": np.array([10, 11, 10], dtype=np.int64)}
        first = hash_stacked_keys(units, fields)
        second = hash_stacked_keys(units.copy(), {"k0": fields["k0"].copy()})
        assert np.array_equal(first, second)

    def test_unit_id_separates_equal_keys(self):
        # Same key value in different units must not match; the hashes
        # differ because the unit id is part of the hashed row.
        fields = {"k0": np.array([10, 10], dtype=np.int64)}
        hashes = hash_stacked_keys(np.array([1, 2], dtype=np.int64), fields)
        assert hashes[0] != hashes[1]

    @pytest.mark.parametrize("algo", ["hash", "merge"])
    def test_batched_match_equals_per_unit_union(self, rng, algo):
        units = [4, 9, 17]
        left_cols = [rng.integers(0, 12, size=n) for n in (20, 1, 35)]
        right_cols = [rng.integers(0, 12, size=n) for n in (15, 40, 2)]
        batch = _batch_of(units, left_cols, right_cols)
        got_left, got_right = _match_batch(batch, algo, {})
        got = set(zip(got_left.tolist(), got_right.tolist()))

        expected = set()
        left_offset = right_offset = 0
        for left, right in zip(left_cols, right_cols):
            li, ri = hash_join_match(
                composite_key([np.asarray(left, dtype=np.int64)]),
                composite_key([np.asarray(right, dtype=np.int64)]),
            )
            expected.update(
                zip((li + left_offset).tolist(), (ri + right_offset).tolist())
            )
            left_offset += len(left)
            right_offset += len(right)
        assert got == expected

    def test_nested_loop_batch_equals_per_unit_union(self, rng):
        units = [0, 3]
        left_cols = [rng.integers(0, 6, size=10), rng.integers(0, 6, size=8)]
        right_cols = [rng.integers(0, 6, size=12), rng.integers(0, 6, size=5)]
        batch = _batch_of(units, left_cols, right_cols)
        got_left, got_right = _match_batch(batch, "nested_loop", {})
        hash_left, hash_right = _match_batch(batch, "hash", {})
        assert set(zip(got_left.tolist(), got_right.tolist())) == set(
            zip(hash_left.tolist(), hash_right.tolist())
        )


def _packed_batch_of(units, left_cols, right_cols, key_width):
    """A UnitBatch over codec-packed keys (already-encoded uint64)."""
    batch = UnitBatch(node=0, key_width=key_width)
    for unit, left, right in zip(units, left_cols, right_cols):
        left = np.asarray(left, dtype=np.uint64)
        right = np.asarray(right, dtype=np.uint64)
        batch.add_unit(
            unit,
            CellSet(np.zeros((len(left), 1), dtype=np.int64), {}),
            CellSet(np.zeros((len(right), 1), dtype=np.int64), {}),
            [left.view(np.int64)],
            left,
            right,
        )
    return batch


class TestPackedBatchedMatching:
    def test_stack_packed_keys_layout(self):
        unit_column, packed = stack_packed_keys(
            [7, 9],
            [np.array([3, 4], dtype=np.uint64), np.array([5], dtype=np.uint64)],
        )
        assert unit_column.dtype == np.uint64
        assert unit_column.tolist() == [7, 7, 9]
        assert packed.tolist() == [3, 4, 5]

    @pytest.mark.parametrize("algo", ["hash", "merge"])
    def test_packed_batch_equals_structured_batch(self, rng, algo):
        units = [4, 9, 17]
        left_cols = [rng.integers(0, 12, size=n) for n in (20, 1, 35)]
        right_cols = [rng.integers(0, 12, size=n) for n in (15, 40, 2)]
        packed = _packed_batch_of(units, left_cols, right_cols, key_width=4)
        structured = _batch_of(units, left_cols, right_cols)
        got_left, got_right = _match_batch(packed, algo, {})
        ref_left, ref_right = _match_batch(structured, algo, {})
        assert set(zip(got_left.tolist(), got_right.tolist())) == set(
            zip(ref_left.tolist(), ref_right.tolist())
        )

    @pytest.mark.parametrize("key_width", [60, 64])
    def test_oversized_unit_ids_fall_back_to_hash_verify(self, rng, key_width):
        # 60-bit keys + unit ids above 2**4 cannot share one lane; the
        # packed branch must hash + verify and still match exactly.
        units = [3, 1 << 50]
        left_cols = [rng.integers(0, 9, size=12), rng.integers(0, 9, size=7)]
        right_cols = [rng.integers(0, 9, size=10), rng.integers(0, 9, size=9)]
        packed = _packed_batch_of(units, left_cols, right_cols, key_width)
        structured = _batch_of(units, left_cols, right_cols)
        got_left, got_right = _match_batch(packed, "hash", {})
        ref_left, ref_right = _match_batch(structured, "hash", {})
        assert set(zip(got_left.tolist(), got_right.tolist())) == set(
            zip(ref_left.tolist(), ref_right.tolist())
        )

    def test_equal_keys_in_different_units_do_not_match(self):
        # One shared key value, two units; the exact combined column must
        # keep them apart.
        packed = _packed_batch_of(
            [0, 1], [[5], [5]], [[5], [5]], key_width=3
        )
        left_idx, right_idx = _match_batch(packed, "hash", {})
        assert set(zip(left_idx.tolist(), right_idx.tolist())) == {
            (0, 0), (1, 1)
        }
