"""Property tests: aggregation against a plain-Python reference."""

from collections import defaultdict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.adm import CellSet, LocalArray, parse_schema
from repro.engine.aggregate import aggregate
from repro.query import parse_expression
from repro.query.aql import AggregateItem

grid_data = st.integers(0, 120).flatmap(
    lambda n: st.tuples(
        hnp.arrays(np.int64, (n, 2), elements=st.integers(1, 12)),
        hnp.arrays(np.int64, n, elements=st.integers(-100, 100)),
    )
)


def build(coords, values):
    schema = parse_schema("P<v:int64>[i=1,12,4, j=1,12,4]")
    return LocalArray.from_cells(schema, CellSet(coords, {"v": values}))


def reference_groups(coords, values, axis):
    groups = defaultdict(list)
    for coord, value in zip(coords, values):
        groups[int(coord[axis])].append(int(value))
    return groups


@given(grid_data)
@settings(deadline=None)
def test_grouped_sum_count_match_reference(data):
    coords, values = data
    array = build(coords, values)
    result = aggregate(
        array,
        [
            AggregateItem("sum", parse_expression("v"), "s"),
            AggregateItem("count", None, "n"),
        ],
        group_by=["i"],
    )
    reference = reference_groups(coords, values, 0)
    cells = result.cells()
    assert len(cells) == len(reference)
    for coord, total, count in zip(
        cells.coords[:, 0], cells.attrs["s"], cells.attrs["n"]
    ):
        assert total == sum(reference[int(coord)])
        assert count == len(reference[int(coord)])


@given(grid_data)
@settings(deadline=None)
def test_min_max_match_reference(data):
    coords, values = data
    array = build(coords, values)
    result = aggregate(
        array,
        [
            AggregateItem("min", parse_expression("v"), "lo"),
            AggregateItem("max", parse_expression("v"), "hi"),
        ],
        group_by=["j"],
    )
    reference = reference_groups(coords, values, 1)
    cells = result.cells()
    for coord, lo, hi in zip(
        cells.coords[:, 0], cells.attrs["lo"], cells.attrs["hi"]
    ):
        assert lo == min(reference[int(coord)])
        assert hi == max(reference[int(coord)])


@given(grid_data)
@settings(deadline=None)
def test_global_equals_sum_of_groups(data):
    coords, values = data
    array = build(coords, values)
    grouped = aggregate(
        array,
        [AggregateItem("sum", parse_expression("v"), "s")],
        group_by=["i"],
    )
    total = aggregate(
        array, [AggregateItem("sum", parse_expression("v"), "s")]
    )
    if len(coords):
        assert total.cells().attrs["s"][0] == grouped.cells().attrs["s"].sum()
    else:
        assert total.n_cells == 0
