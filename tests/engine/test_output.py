"""Unit tests for destination derivation and output construction."""

import numpy as np
import pytest

from repro.adm import parse_schema
from repro.core.join_schema import infer_join_schema
from repro.engine.output import (
    OutputBuilder,
    build_output_spec,
    derive_destination,
    infer_expression_type,
)
from repro.errors import PlanningError
from repro.query import parse_aql
from repro.query.expressions import parse_expression

DD_A = parse_schema("A<v1:int64, v2:float64>[i=1,16,4, j=1,16,4]")
DD_B = parse_schema("B<v1:int64, v2:float64>[i=1,16,4, j=1,16,4]")


class TestDeriveDestination:
    def test_into_schema_wins(self):
        query = parse_aql(
            "SELECT A.v1 INTO X<out:int64>[] FROM A, B WHERE A.i = B.i"
        )
        dest = derive_destination(query, DD_A, DD_B)
        assert dest.name == "X"

    def test_full_dd_keeps_source_shape(self):
        query = parse_aql(
            "SELECT A.v1 - B.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        dest = derive_destination(query, DD_A, DD_B)
        assert dest.dim_names == ("i", "j")

    def test_partial_dd_is_dimensionless(self):
        query = parse_aql("SELECT A.v1 FROM A, B WHERE A.i = B.i")
        dest = derive_destination(query, DD_A, DD_B)
        assert dest.is_dimensionless()

    def test_aa_is_dimensionless(self):
        query = parse_aql("SELECT A.v1 FROM A, B WHERE A.v1 = B.v1")
        dest = derive_destination(query, DD_A, DD_B)
        assert dest.is_dimensionless()

    def test_select_star_uses_equation3(self):
        query = parse_aql("SELECT * FROM A, B WHERE A.i = B.i AND A.j = B.j")
        dest = derive_destination(query, DD_A, DD_B)
        assert dest.dim_names == ("i", "j")
        assert "B_v1" in dest.attr_names

    def test_duplicate_output_names_disambiguated(self):
        query = parse_aql("SELECT A.v1, B.v1 FROM A, B WHERE A.i = B.i")
        dest = derive_destination(query, DD_A, DD_B)
        assert len(set(dest.attr_names)) == 2


class TestTypeInference:
    def test_int_arithmetic(self):
        expr = parse_expression("A.v1 - B.v1")
        assert infer_expression_type(expr, DD_A, DD_B) == "int64"

    def test_float_field_promotes(self):
        expr = parse_expression("A.v2 + 1")
        assert infer_expression_type(expr, DD_A, DD_B) == "float64"

    def test_division_promotes(self):
        expr = parse_expression("A.v1 / B.v1")
        assert infer_expression_type(expr, DD_A, DD_B) == "float64"

    def test_dimension_is_int(self):
        expr = parse_expression("i * 2")
        assert infer_expression_type(expr, DD_A, DD_B) == "int64"


class TestOutputSpec:
    def test_fig5_star_resolution(self):
        a = parse_schema("A<v:int64>[i=1,128,4]")
        b = parse_schema("B<w:int64>[j=1,128,4]")
        query = parse_aql(
            "SELECT * INTO C<i:int64, j:int64>[v=1,128,4] "
            "FROM A, B WHERE A.v = B.w"
        )
        schema = infer_join_schema(query, a, b)
        spec = build_output_spec(query, schema)
        by_name = {field.name: field for field in spec}
        assert by_name["v"].source == ("key", 0)
        assert by_name["i"].source == ("left", "i")
        assert by_name["j"].source == ("right", "j")

    def test_positional_select_items(self):
        query = parse_aql(
            "SELECT A.v1 - B.v1 AS d1, A.v2 AS copy "
            "FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        schema = infer_join_schema(
            query, DD_A, DD_B,
            destination=derive_destination(query, DD_A, DD_B),
        )
        spec = build_output_spec(query, schema)
        attr_fields = [f for f in spec if f.role == "attr"]
        assert [f.source for f in attr_fields] == [("expr", 0), ("expr", 1)]

    def test_select_count_must_match(self):
        query = parse_aql(
            "SELECT A.v1 INTO T<x:int64, y:int64>[] FROM A, B WHERE A.i = B.i"
        )
        schema = infer_join_schema(query, DD_A, DD_B)
        with pytest.raises(PlanningError):
            build_output_spec(query, schema)

    def test_unresolvable_destination_field(self):
        query = parse_aql(
            "SELECT * INTO T<mystery:int64>[] FROM A, B WHERE A.i = B.i"
        )
        schema = infer_join_schema(query, DD_A, DD_B)
        with pytest.raises(PlanningError):
            build_output_spec(query, schema)

    def test_prefixed_names_resolve(self):
        query = parse_aql("SELECT * FROM A, B WHERE A.i = B.i AND A.j = B.j")
        schema = infer_join_schema(query, DD_A, DD_B)
        spec = build_output_spec(query, schema)
        by_name = {field.name: field for field in spec}
        assert by_name["B_v1"].source == ("right", "v1")
        assert by_name["v1"].source == ("left", "v1")


class TestZeroMatchOutput:
    """A join that matches nothing still yields a well-typed empty output."""

    def _builder(self, text):
        query = parse_aql(text)
        schema = infer_join_schema(
            query, DD_A, DD_B,
            destination=derive_destination(query, DD_A, DD_B),
        )
        return OutputBuilder(query, schema)

    def test_finish_without_parts_keeps_dtypes(self):
        builder = self._builder(
            "SELECT A.v1, A.v2 INTO T<x:int64, y:float64>[] "
            "FROM A, B WHERE A.v1 = B.v1"
        )
        empty = builder.finish()
        assert len(empty) == 0
        assert empty.ndims == 0
        assert empty.attrs["x"].dtype == np.int64
        assert empty.attrs["y"].dtype == np.float64

    def test_finish_without_parts_keeps_dimensionality(self):
        builder = self._builder(
            "SELECT * FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        empty = builder.finish()
        assert len(empty) == 0
        assert empty.ndims == 2
        assert set(empty.attrs) == set(builder.dest.attr_names)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_selectivity_zero_join_end_to_end(self, workers):
        """Disjoint key domains: the full pipeline — serial and parallel —
        must produce zero cells with the destination's exact dtypes."""
        from repro.adm import CellSet
        from repro.session import Session

        rng = np.random.default_rng(11)
        session = Session(n_nodes=3, n_workers=workers)
        for name, low, high in (("A", 0, 50), ("B", 1000, 1050)):
            coords = np.unique(rng.integers(1, 33, size=(500, 2)), axis=0)
            session.create_and_load(
                f"{name}<v1:int64, v2:float64>[i=1,32,8, j=1,32,8]",
                CellSet(
                    coords,
                    {
                        "v1": rng.integers(low, high, len(coords)),
                        "v2": rng.uniform(0, 1, len(coords)),
                    },
                ),
            )
        result = session.execute(
            "SELECT A.v1, A.v2 INTO T<x:int64, y:float64>[] "
            "FROM A, B WHERE A.v1 = B.v1",
            join_algo="hash",
        )
        assert result.report.output_cells == 0
        assert len(result.cells) == 0
        assert result.cells.attrs["x"].dtype == np.int64
        assert result.cells.attrs["y"].dtype == np.float64
