"""Tests for the sampling-based selectivity estimator."""

import numpy as np
import pytest

from repro.adm import CellSet
from repro.cluster import Cluster
from repro.core.join_schema import infer_join_schema
from repro.engine import ShuffleJoinExecutor
from repro.engine.estimate import estimate_selectivity
from repro.query import parse_aql
from repro.workloads import selectivity_pair


def make_cluster(selectivity, n_cells=8_000, seed=0):
    array_a, array_b = selectivity_pair(selectivity, n_cells=n_cells, seed=seed)
    cluster = Cluster(n_nodes=4)
    cluster.load_array(array_a)
    cluster.load_array(array_b, placement="block")
    return cluster


def schema_for(cluster):
    query = parse_aql("SELECT A.i INTO T<i:int64>[] FROM A, B WHERE A.v = B.w")
    return query, infer_join_schema(
        query, cluster.schema("A"), cluster.schema("B")
    )


class TestEstimator:
    @pytest.mark.parametrize("selectivity", [0.1, 0.5, 10.0])
    def test_order_of_magnitude(self, selectivity):
        cluster = make_cluster(selectivity)
        _, join_schema = schema_for(cluster)
        estimate = estimate_selectivity(
            cluster, "A", "B", join_schema, sample_cells=4_000
        )
        assert selectivity / 5 <= estimate <= selectivity * 5

    def test_full_sample_is_exact(self):
        cluster = make_cluster(1.0, n_cells=2_000)
        _, join_schema = schema_for(cluster)
        estimate = estimate_selectivity(
            cluster, "A", "B", join_schema, sample_cells=10_000
        )
        assert estimate == pytest.approx(1.0, rel=0.02)

    def test_disjoint_arrays_floor(self):
        cluster = Cluster(n_nodes=2)
        cluster.create_array(
            "A<v:int64>[i=1,100,10]",
            CellSet(np.arange(1, 101).reshape(-1, 1),
                    {"v": np.arange(0, 100)}),
        )
        cluster.create_array(
            "B<w:int64>[j=1,100,10]",
            CellSet(np.arange(1, 101).reshape(-1, 1),
                    {"w": np.arange(1000, 1100)}),
        )
        _, join_schema = schema_for(cluster)
        estimate = estimate_selectivity(cluster, "A", "B", join_schema)
        assert estimate <= 1e-3

    def test_executor_uses_estimate_when_no_hint(self):
        """Without a hint the executor still picks a sensible plan: at
        high selectivity the estimator should push it toward merge."""
        n = 4_000
        cluster = make_cluster(20.0, n_cells=n)
        interval = cluster.schema("A").dims[0].chunk_interval
        executor = ShuffleJoinExecutor(cluster)  # no selectivity_hint
        result = executor.execute(
            f"SELECT * INTO C<i:int64, j:int64>[v=1,{n},{interval}] "
            "FROM A, B WHERE A.v = B.w",
            planner="mbh",
        )
        assert result.logical_plan.join_algo == "merge"
