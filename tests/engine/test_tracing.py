"""Integration tests: traced execution, explain-analyze, and metrics.

These run real joins through the executor with tracing/analyze enabled
and check that the observability layer sees the whole pipeline — plan
phases, the simulated shuffle's transfer events, worker batches — and
that the counters agree between the serial and parallel match paths.
"""

import json

import pytest

from repro.engine import ShuffleJoinExecutor
from repro.errors import ExecutionError
from repro.obs.trace import validate_chrome_trace

DD_QUERY = (
    "SELECT A.v1 - B.v1 AS d1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
)


@pytest.fixture
def executor(small_cluster):
    # plan_cache_size > 0 so the serving-layer cache_lookup span fires.
    return ShuffleJoinExecutor(
        small_cluster, selectivity_hint=0.5, plan_cache_size=4
    )


class TestTracedExecution:
    def test_trace_attaches_spans_for_every_phase(self, executor):
        result = executor.execute(DD_QUERY, planner="baseline", trace=True)
        assert result.trace is not None
        names = {span.name for span in result.trace.spans}
        for expected in (
            "cache_lookup",
            "logical_plan",
            "slice_mapping",
            "physical_assign",
            "data_alignment",
            "cell_comparison",
        ):
            assert expected in names, f"missing span {expected}"
        # The shuffle schedule exports per-transfer spans onto per-
        # destination receive lanes.
        xfers = [s for s in result.trace.spans if s.name.startswith("xfer ")]
        assert xfers
        assert all(s.lane.startswith("net:recv n") for s in xfers)
        assert all(s.attrs.get("simulated") for s in xfers)

    def test_transfer_lanes_respect_write_lock(self, executor):
        """On one receive lane, spans never overlap (one writer per node)."""
        result = executor.execute(DD_QUERY, planner="baseline", trace=True)
        by_lane = {}
        for span in result.trace.spans:
            if span.name.startswith("xfer "):
                by_lane.setdefault(span.lane, []).append(span)
        assert by_lane
        for spans in by_lane.values():
            spans.sort(key=lambda s: s.start)
            for prev, cur in zip(spans, spans[1:]):
                assert cur.start >= prev.end - 1e-12

    def test_trace_path_writes_valid_chrome_json(self, executor, tmp_path):
        path = tmp_path / "query.trace.json"
        result = executor.execute(DD_QUERY, planner="baseline", trace=str(path))
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        n_complete = sum(
            1 for e in payload["traceEvents"] if e["ph"] == "X"
        )
        assert n_complete == len(result.trace)

    def test_parallel_execution_records_worker_batches(self, executor):
        result = executor.execute(
            DD_QUERY, planner="baseline", n_workers=2, trace=True
        )
        batches = [
            s for s in result.trace.spans if s.name.startswith("batch n")
        ]
        assert batches
        assert all(s.lane.startswith("worker:n") for s in batches)
        nested = {s.name for s in result.trace.spans if "/" in s.path}
        assert "match" in nested and "materialise" in nested

    def test_cache_lookup_span_reports_hit_and_miss(self, executor):
        cold = executor.execute(DD_QUERY, planner="baseline", trace=True)
        warm = executor.execute(DD_QUERY, planner="baseline", trace=True)

        def lookup_status(result):
            (span,) = [
                s for s in result.trace.spans if s.name == "cache_lookup"
            ]
            return span.attrs["status"]

        assert lookup_status(cold) == "miss"
        assert lookup_status(warm) == "hit"

    def test_tracer_off_by_default(self, executor):
        result = executor.execute(DD_QUERY, planner="baseline")
        assert result.trace is None
        assert not executor.tracer.enabled


class TestExplainAnalyze:
    def test_report_per_node_shapes(self, executor, small_cluster):
        report = executor.explain_analyze(DD_QUERY, planner="baseline")
        assert report.n_nodes == small_cluster.n_nodes
        assert len(report.nodes) == small_cluster.n_nodes
        assert report.predicted_total_seconds > 0
        assert report.actual_total_seconds > 0
        assert sum(n.output_cells for n in report.nodes) == (
            report.result.array.n_cells
        )
        text = report.describe()
        assert "EXPLAIN ANALYZE" in text
        assert "totals: predicted=" in text

    def test_predictions_match_cost_model_totals(self, executor):
        report = executor.explain_analyze(DD_QUERY, planner="baseline")
        # Actual cells sent/received over the simulated network must
        # agree with the plan's assignment-level totals: the model and
        # the shuffle walk the same assignment.
        assert sum(n.pred_send_cells for n in report.nodes) == sum(
            n.actual_sent_cells for n in report.nodes
        )
        assert sum(n.pred_recv_cells for n in report.nodes) == sum(
            n.actual_recv_cells for n in report.nodes
        )

    def test_analyze_without_flag_has_no_profile(self, executor):
        result = executor.execute(DD_QUERY, planner="baseline")
        assert result.report.node_profile is None
        with pytest.raises(ExecutionError):
            from repro.obs.explain_analyze import ExplainAnalyzeReport

            ExplainAnalyzeReport.from_result(result)

    def test_analyze_works_on_cache_hit(self, executor):
        executor.execute(DD_QUERY, planner="baseline")
        report = executor.explain_analyze(DD_QUERY, planner="baseline")
        assert report.nodes
        assert report.predicted_total_seconds > 0


class TestMetricsCounters:
    def test_execution_populates_registry(self, executor):
        result = executor.execute(DD_QUERY, planner="baseline")
        snap = executor.metrics.snapshot()
        counters = snap["counters"]
        assert counters["queries_executed"] == 1
        assert counters["matches_emitted"] == result.array.n_cells
        assert counters["cells_shuffled"] == result.report.cells_moved
        assert counters["join_units_matched"] == result.report.n_units

    def test_serial_and_parallel_counters_agree(self, small_cluster):
        serial = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        parallel = ShuffleJoinExecutor(small_cluster, selectivity_hint=0.5)
        serial.execute(DD_QUERY, planner="baseline")
        parallel.execute(DD_QUERY, planner="baseline", n_workers=2)
        keys = (
            "join_units_matched",
            "cells_compared",
            "matched_pairs",
            "cells_emitted",
        )
        s = serial.metrics.snapshot()["counters"]
        p = parallel.metrics.snapshot()["counters"]
        for key in keys:
            assert s[key] == p[key], key
        assert "batches" in p and "batches" not in s
