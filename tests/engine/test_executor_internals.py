"""Unit tests for executor internals: slice mapping, shipping, timing."""

import numpy as np
import pytest

from repro.adm import CellSet
from repro.cluster import Cluster
from repro.core.join_schema import infer_join_schema
from repro.core.logical import LogicalPlanner, PlanInputs
from repro.engine import ShuffleJoinExecutor
from repro.engine.output import derive_destination
from repro.query import parse_aql


@pytest.fixture
def setup():
    rng = np.random.default_rng(19)
    cluster = Cluster(n_nodes=3)
    for name, placement in (("A", "round_robin"), ("B", "block")):
        coords = np.unique(rng.integers(1, 33, size=(600, 2)), axis=0)
        cluster.create_array(
            f"{name}<v1:int64, v2:float64, extra:float64>"
            f"[i=1,32,8, j=1,32,8]",
            CellSet(
                coords,
                {
                    "v1": rng.integers(0, 30, len(coords)),
                    "v2": rng.uniform(0, 1, len(coords)),
                    "extra": rng.uniform(0, 1, len(coords)),
                },
            ),
            placement=placement,
        )
    executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.4)
    return cluster, executor


def plan_for(cluster, executor, text, algo=None):
    query = parse_aql(text)
    alpha, beta = cluster.schema(query.left), cluster.schema(query.right)
    destination = derive_destination(query, alpha, beta)
    join_schema = infer_join_schema(
        query, alpha, beta,
        histograms=executor._histograms_for(query, alpha, beta),
        destination=destination,
    )
    planner = LogicalPlanner(
        join_schema,
        PlanInputs(600, 600, 16, 16, selectivity=0.4, n_nodes=3),
    )
    plan = planner.best_plan(False) if algo is None else planner.plan_named(algo)
    return query, join_schema, plan


class TestShipFields:
    def test_only_needed_attributes_ship(self, setup):
        cluster, executor = setup
        query, join_schema, _ = plan_for(
            cluster, executor,
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j",
        )
        assert executor._ship_fields(join_schema, "left") == ["v1"]
        assert executor._ship_fields(join_schema, "right") == []

    def test_attribute_keys_always_ship(self, setup):
        cluster, executor = setup
        query, join_schema, _ = plan_for(
            cluster, executor,
            "SELECT A.i INTO T<ai:int64>[] FROM A, B WHERE A.v1 = B.v1",
        )
        assert "v1" in executor._ship_fields(join_schema, "left")
        assert "v1" in executor._ship_fields(join_schema, "right")


class TestSliceMappingConservation:
    def test_stats_cover_every_cell(self, setup):
        cluster, executor = setup
        query, join_schema, plan = plan_for(
            cluster, executor,
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j",
        )
        n_units, table = executor._slice_mapping(query, join_schema, plan)
        assert table.stats.left_unit_totals.sum() == cluster.array_cell_count("A")
        assert table.stats.right_unit_totals.sum() == cluster.array_cell_count("B")

    def test_slices_match_stats(self, setup):
        cluster, executor = setup
        query, join_schema, plan = plan_for(
            cluster, executor,
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j",
        )
        n_units, table = executor._slice_mapping(query, join_schema, plan)
        for unit in range(n_units):
            for node in range(cluster.n_nodes):
                piece = table.piece("left", unit, node)
                expected = table.stats.s_left[unit, node]
                assert (0 if piece is None else len(piece)) == expected


class TestSimulatedSortAccounting:
    def test_redim_plans_pay_sort_time(self, setup):
        """The same D:D join forced through redim (by a widened grid on
        one side) must report more comparison time than the conforming
        scan plan — the redim sort lands in the compare phase."""
        cluster, executor = setup
        conforming = executor.execute(
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j",
            planner="mbh",
            join_algo="merge",
        ).report
        assert "scan(A)" in conforming.logical_afl

        rng = np.random.default_rng(23)
        coords = np.unique(rng.integers(1, 33, size=(600, 2)), axis=0)
        cluster.create_array(
            "C<v1:int64>[i=1,32,16, j=1,32,16]",  # coarser grid: no scan
            CellSet(coords, {"v1": rng.integers(0, 30, len(coords))}),
        )
        reorganised = executor.execute(
            "SELECT A.v1 FROM A, C WHERE A.i = C.i AND A.j = C.j",
            planner="mbh",
            join_algo="merge",
        ).report
        assert "redim" in reorganised.logical_afl
        assert reorganised.compare_seconds > conforming.compare_seconds


class TestFilteredCount:
    def test_counts_after_pushdown(self, setup):
        cluster, executor = setup
        query = parse_aql(
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.v1 < 10"
        )
        filtered = executor._filtered_count(query, "A")
        raw = cluster.array_cell_count("A")
        true_count = int((cluster.array_cells("A").attrs["v1"] < 10).sum())
        assert filtered == true_count
        assert filtered < raw
        # The unfiltered side is untouched.
        assert executor._filtered_count(query, "B") == cluster.array_cell_count("B")


class TestSliceTableCaching:
    """Assembly and key derivation are memoised per (side, unit)."""

    def test_assembled_needs_no_concat(self, setup, monkeypatch):
        """Single-sort tables serve assembled units as slice views of the
        side's global unit-major arrays: zero concatenations at assembly
        time, and the memo returns the identical object on re-access."""
        cluster, executor = setup
        # An attribute join hash-partitions into bucket units, so one
        # unit's cells are spread over several nodes (unlike chunk units,
        # which whole-chunk placement keeps on a single node).
        prepared = executor.prepare(
            "SELECT A.v1 FROM A, B WHERE A.v1 = B.v1", join_algo="hash"
        )
        table = prepared.slice_table
        unit = next(
            u for u in range(table.stats.n_units)
            if (table.stats.s_left[u] > 0).sum() >= 2
        )
        calls = {"n": 0}
        original = CellSet.concat

        def counting(cls, parts):
            calls["n"] += 1
            return original(parts)

        monkeypatch.setattr(CellSet, "concat", classmethod(counting))
        first = table.assembled("left", unit)
        assert calls["n"] == 0  # contiguous view, not a concatenation
        assert len(first) == table.stats.s_left[unit].sum()
        second = table.assembled("left", unit)
        assert second is first
        assert calls["n"] == 0

    def test_reference_mapping_matches_single_sort(self, setup):
        """The pre-vectorization mapping (single_sort=False) must produce
        the same stats and the same assembled cells per unit — it is the
        oracle the prepare benchmark races against. Packed keys are
        pinned off: the reference mapping always hashes bucket units
        per-column, so layout parity is defined on structured keys (the
        packed-vs-structured equivalence has its own tests in
        test_packed_join.py)."""
        cluster, executor = setup
        query = "SELECT A.v1 FROM A, B WHERE A.v1 = B.v1"
        executor.packed_keys = False
        try:
            fast = executor.prepare(query, join_algo="hash")
            executor.single_sort = False
            slow = executor.prepare(query, join_algo="hash")
        finally:
            executor.single_sort = True
            executor.packed_keys = True
        assert np.array_equal(
            fast.slice_table.stats.s_left, slow.slice_table.stats.s_left
        )
        assert np.array_equal(
            fast.slice_table.stats.s_right, slow.slice_table.stats.s_right
        )
        for unit in range(fast.slice_table.stats.n_units):
            for side in ("left", "right"):
                a = fast.slice_table.assembled(side, unit)
                b = slow.slice_table.assembled(side, unit)
                if a is None or b is None:
                    assert a is None and b is None
                    continue
                assert np.array_equal(a.coords, b.coords)
                for name in a.attrs:
                    assert np.array_equal(a.attrs[name], b.attrs[name])

    def test_unit_keys_cached(self, setup):
        cluster, executor = setup
        prepared = executor.prepare(
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        table = prepared.slice_table
        unit = next(
            u for u in range(table.stats.n_units)
            if table.stats.left_unit_totals[u]
        )
        cols_first, keys_first = table.unit_keys(
            "left", unit, prepared.join_schema
        )
        cols_second, keys_second = table.unit_keys(
            "left", unit, prepared.join_schema
        )
        assert keys_second is keys_first
        assert all(a is b for a, b in zip(cols_first, cols_second))

    def test_planner_switch_reuses_assembly_and_keys(self, setup, monkeypatch):
        """Re-planning a prepared join with a different physical planner
        must not re-partition: no concatenations and no composite-key
        derivations happen during the second execution — every per-unit
        structure comes out of the slice table's caches."""
        cluster, executor = setup
        prepared = executor.prepare(
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        first = prepared.execute("mbh")

        concats = {"n": 0}
        original_concat = CellSet.concat

        def counting_concat(cls, parts):
            concats["n"] += 1
            return original_concat(parts)

        monkeypatch.setattr(CellSet, "concat", classmethod(counting_concat))

        import repro.engine.executor as executor_mod

        keys = {"n": 0}
        original_key = executor_mod.composite_key

        def counting_key(columns):
            keys["n"] += 1
            return original_key(columns)

        monkeypatch.setattr(executor_mod, "composite_key", counting_key)

        second = prepared.execute("tabu")
        assert concats["n"] == 0
        assert keys["n"] == 0
        assert second.cells.same_cells(first.cells)

    def test_unit_order_cached(self, setup):
        cluster, executor = setup
        prepared = executor.prepare(
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        table = prepared.slice_table
        unit = next(
            u for u in range(table.stats.n_units)
            if table.stats.left_unit_totals[u]
        )
        first = table.unit_order("left", unit, prepared.join_schema)
        second = table.unit_order("left", unit, prepared.join_schema)
        assert second is first

    def test_repeated_execution_reuses_assembly(self, setup, monkeypatch):
        """Executing a prepared join again — serial or parallel — must not
        re-concatenate any slice: the whole table is assembled once."""
        cluster, executor = setup
        prepared = executor.prepare(
            "SELECT A.v1 FROM A, B WHERE A.i = B.i AND A.j = B.j"
        )
        warm = prepared.execute("baseline")
        calls = {"n": 0}
        original = CellSet.concat

        def counting(cls, parts):
            calls["n"] += 1
            return original(parts)

        monkeypatch.setattr(CellSet, "concat", classmethod(counting))
        again = prepared.execute("baseline")
        assert calls["n"] == 0
        assert again.cells.same_cells(warm.cells)
