"""Tests for aggregation, apply, GROUP BY in AQL, and AFL aggregates."""

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray, parse_schema
from repro.engine.aggregate import aggregate, apply_expression
from repro.errors import ExecutionError, ParseError
from repro.query import parse_aql, parse_expression
from repro.query.aql import AggregateItem


@pytest.fixture
def grid_array():
    """A 4x4 dense grid with v = i*10 + j."""
    coords = np.stack(
        np.meshgrid(np.arange(1, 5), np.arange(1, 5), indexing="ij"), axis=-1
    ).reshape(-1, 2)
    v = coords[:, 0] * 10 + coords[:, 1]
    schema = parse_schema("G<v:int64>[i=1,4,2, j=1,4,2]")
    return LocalArray.from_cells(schema, CellSet(coords, {"v": v}))


def item(fn, expr_text, alias):
    expr = None if expr_text is None else parse_expression(expr_text)
    return AggregateItem(fn, expr, alias)


class TestAggregateFunctions:
    def test_global_count(self, grid_array):
        result = aggregate(grid_array, [item("count", None, "n")])
        assert result.schema.is_dimensionless()
        assert result.cells().attrs["n"][0] == 16

    def test_global_sum_avg_min_max(self, grid_array):
        result = aggregate(
            grid_array,
            [
                item("sum", "v", "s"),
                item("avg", "v", "a"),
                item("min", "v", "lo"),
                item("max", "v", "hi"),
            ],
        )
        cells = result.cells()
        v = grid_array.cells().attrs["v"]
        assert cells.attrs["s"][0] == v.sum()
        assert cells.attrs["a"][0] == pytest.approx(v.mean())
        assert cells.attrs["lo"][0] == v.min()
        assert cells.attrs["hi"][0] == v.max()

    def test_group_by_dimension(self, grid_array):
        result = aggregate(
            grid_array, [item("sum", "v", "s")], group_by=["i"]
        )
        assert result.schema.dim_names == ("i",)
        cells = result.cells()
        by_i = dict(zip(cells.coords[:, 0].tolist(), cells.attrs["s"]))
        for i in range(1, 5):
            assert by_i[i] == sum(i * 10 + j for j in range(1, 5))

    def test_group_by_two_dimensions_identity_counts(self, grid_array):
        result = aggregate(
            grid_array, [item("count", None, "n")], group_by=["i", "j"]
        )
        assert result.n_cells == 16
        assert (result.cells().attrs["n"] == 1).all()

    def test_aggregate_of_expression(self, grid_array):
        result = aggregate(grid_array, [item("sum", "v * 2", "s2")])
        assert result.cells().attrs["s2"][0] == 2 * grid_array.cells().attrs["v"].sum()

    def test_group_by_attribute_rejected(self, grid_array):
        with pytest.raises(ExecutionError):
            aggregate(grid_array, [item("count", None, "n")], group_by=["v"])

    def test_duplicate_aliases_rejected(self, grid_array):
        with pytest.raises(ExecutionError):
            aggregate(
                grid_array,
                [item("count", None, "x"), item("sum", "v", "x")],
            )

    def test_empty_array(self):
        schema = parse_schema("E<v:int64>[i=1,4,2]")
        empty = LocalArray.empty(schema)
        result = aggregate(empty, [item("count", None, "n")], group_by=["i"])
        assert result.n_cells == 0

    def test_bad_function_rejected(self):
        with pytest.raises(ParseError):
            AggregateItem("median", parse_expression("v"), "m")
        with pytest.raises(ParseError):
            AggregateItem("sum", None, "s")


class TestApply:
    def test_adds_computed_attribute(self, grid_array):
        result = apply_expression(
            grid_array, "double", parse_expression("v * 2")
        )
        cells = result.cells()
        np.testing.assert_array_equal(cells.attrs["double"], cells.attrs["v"] * 2)
        assert result.schema.attr_names == ("v", "double")

    def test_dimension_arithmetic(self, grid_array):
        result = apply_expression(grid_array, "diag", parse_expression("i - j"))
        cells = result.cells()
        np.testing.assert_array_equal(
            cells.attrs["diag"], cells.coords[:, 0] - cells.coords[:, 1]
        )

    def test_float_expression(self, grid_array):
        result = apply_expression(grid_array, "half", parse_expression("v / 2"))
        assert result.schema.attr("half").type_name == "float64"

    def test_existing_name_rejected(self, grid_array):
        with pytest.raises(ExecutionError):
            apply_expression(grid_array, "v", parse_expression("v"))


class TestAqlGroupBy:
    @pytest.fixture
    def session(self, grid_array):
        from repro import Session

        session = Session(n_nodes=2)
        session.cluster.load_array(grid_array)
        return session

    def test_parse_aggregate_select(self):
        query = parse_aql("SELECT sum(v) AS s, count(*) FROM G GROUP BY i")
        assert query.has_aggregates
        assert query.group_by == ["i"]
        assert query.select[0].alias == "s"
        assert query.select[1].fn == "count"

    def test_default_alias(self):
        query = parse_aql("SELECT avg(v) FROM G")
        assert query.select[0].alias == "avg_v"

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT v FROM G GROUP BY i")

    def test_mixed_select_rejected(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT v, sum(v) FROM G GROUP BY i")

    def test_aggregates_on_joins_rejected(self):
        with pytest.raises(ParseError):
            parse_aql("SELECT sum(A.v) FROM A, B WHERE A.i = B.i")

    def test_end_to_end(self, session):
        result = session.execute(
            "SELECT sum(v) AS s, count(*) AS n FROM G WHERE v > 20 GROUP BY i"
        )
        cells = result.cells()
        # Rows i=1,2 are filtered out entirely (v <= 24 only partially)...
        by_i = dict(zip(cells.coords[:, 0].tolist(), cells.attrs["n"]))
        assert by_i[3] == 4 and by_i[4] == 4
        assert 1 not in by_i  # v in 11..14, all <= 20

    def test_global_aggregate_via_aql(self, session):
        result = session.execute("SELECT count(*) AS n FROM G")
        assert result.cells().attrs["n"][0] == 16


class TestAflAggregate:
    @pytest.fixture
    def session(self, grid_array):
        from repro import Session

        session = Session(n_nodes=2)
        session.cluster.load_array(grid_array)
        return session

    def test_aggregate_op(self, session):
        result = session.afl("aggregate(G, sum(v) AS s, i)")
        assert result.schema.dim_names == ("i",)
        assert result.n_cells == 4

    def test_aggregate_composed_with_filter(self, session):
        result = session.afl("aggregate(filter(G, v > 20), count(*) AS n)")
        assert result.cells().attrs["n"][0] == int(
            (session.array("G").cells().attrs["v"] > 20).sum()
        )

    def test_apply_op(self, session):
        result = session.afl("apply(G, double, v * 2)")
        cells = result.cells()
        np.testing.assert_array_equal(
            cells.attrs["double"], cells.attrs["v"] * 2
        )

    def test_apply_then_aggregate(self, session):
        result = session.afl(
            "aggregate(apply(G, sq, v * v), sum(sq) AS total)"
        )
        v = session.array("G").cells().attrs["v"]
        assert result.cells().attrs["total"][0] == pytest.approx((v * v).sum())
