"""Edge cases and failure injection across the stack.

Degenerate shapes (empty arrays, single chunks, single cells), clusters
with more nodes than data, extreme unit counts, negative coordinate
ranges, and duplicate coordinates — the configurations most likely to
break partitioning arithmetic or planner assumptions.
"""

from collections import Counter

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray, parse_schema
from repro.cluster import Cluster
from repro.core.cost_model import AnalyticalCostModel, CostParams
from repro.core.planners import PLANNER_NAMES, get_planner
from repro.core.slices import SliceStats
from repro.engine import ShuffleJoinExecutor

DD_QUERY = "SELECT A.v, B.v FROM A, B WHERE A.i = B.i AND A.j = B.j"


def two_arrays(cells_a, cells_b, schema="<v:int64>[i=1,64,8, j=1,64,8]",
               n_nodes=4):
    cluster = Cluster(n_nodes=n_nodes)
    cluster.create_array(f"A{schema}", cells_a)
    cluster.create_array(f"B{schema}", cells_b, placement="block")
    return cluster


def cells_of(coord_list, values=None):
    coords = np.asarray(coord_list, dtype=np.int64).reshape(len(coord_list), -1)
    if values is None:
        values = np.arange(len(coords), dtype=np.int64)
    return CellSet(coords, {"v": np.asarray(values, dtype=np.int64)})


class TestEmptyInputs:
    def test_one_empty_array(self):
        cluster = Cluster(n_nodes=3)
        cluster.create_array(
            "A<v:int64>[i=1,64,8, j=1,64,8]", cells_of([[1, 1], [2, 2]])
        )
        cluster.create_empty_array("B<v:int64>[i=1,64,8, j=1,64,8]")
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.1)
        result = executor.execute(DD_QUERY, planner="mbh")
        assert result.array.n_cells == 0
        assert result.report.cells_moved == 0

    def test_both_empty(self):
        cluster = Cluster(n_nodes=2)
        cluster.create_empty_array("A<v:int64>[i=1,8,4]")
        cluster.create_empty_array("B<v:int64>[i=1,8,4]")
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.1)
        result = executor.execute(
            "SELECT A.v, B.v FROM A, B WHERE A.i = B.i", planner="tabu"
        )
        assert result.array.n_cells == 0


class TestSingleCellAndChunk:
    def test_single_cell_arrays_match(self):
        cluster = two_arrays(cells_of([[5, 5]]), cells_of([[5, 5]]))
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=1.0)
        result = executor.execute(DD_QUERY, planner="mbh")
        assert result.array.n_cells == 1

    def test_single_cell_arrays_no_match(self):
        cluster = two_arrays(cells_of([[1, 1]]), cells_of([[8, 8]]))
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=1.0)
        result = executor.execute(DD_QUERY, planner="tabu")
        assert result.array.n_cells == 0

    def test_single_chunk_schema(self):
        """Chunk interval covering the whole extent: one join unit."""
        schema = "<v:int64>[i=1,16,16, j=1,16,16]"
        gen = np.random.default_rng(0)
        coords = np.unique(gen.integers(1, 17, size=(60, 2)), axis=0)
        cluster = two_arrays(
            CellSet(coords, {"v": gen.integers(0, 5, len(coords))}),
            CellSet(coords, {"v": gen.integers(0, 5, len(coords))}),
            schema=schema,
        )
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=1.0)
        result = executor.execute(DD_QUERY, planner="mbh")
        assert result.report.n_units == 1
        assert result.array.n_cells == len(coords)


class TestMoreNodesThanData:
    def test_twelve_nodes_three_chunks(self):
        gen = np.random.default_rng(1)
        coords = np.unique(gen.integers(1, 17, size=(30, 2)), axis=0)
        cluster = Cluster(n_nodes=12)
        schema = "<v:int64>[i=1,64,16, j=1,64,16]"
        cluster.create_array(
            f"A{schema}", CellSet(coords, {"v": gen.integers(0, 5, len(coords))})
        )
        cluster.create_array(
            f"B{schema}", CellSet(coords, {"v": gen.integers(0, 5, len(coords))}),
            placement="block",
        )
        for planner in ("baseline", "mbh", "tabu"):
            executor = ShuffleJoinExecutor(cluster, selectivity_hint=1.0)
            result = executor.execute(DD_QUERY, planner=planner)
            assert result.array.n_cells == len(coords)


class TestDuplicateCoordinates:
    def test_dd_join_fans_out(self):
        """Multiple cells at one coordinate (AIS-style) multiply matches."""
        cells_a = cells_of([[3, 3], [3, 3], [4, 4]])
        cells_b = cells_of([[3, 3], [3, 3], [3, 3]])
        cluster = two_arrays(cells_a, cells_b)
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=1.0)
        result = executor.execute(DD_QUERY, planner="mbh")
        assert result.array.n_cells == 6  # 2 x 3 at (3,3)


class TestNegativeCoordinateRanges:
    def test_lat_lon_style_schema(self):
        schema = "<v:int64>[lat=-90,89,45, lon=-180,179,90]"
        gen = np.random.default_rng(2)
        lat = gen.integers(-90, 90, 80)
        lon = gen.integers(-180, 180, 80)
        coords = np.unique(np.stack([lat, lon], axis=1), axis=0)
        cells = CellSet(coords, {"v": gen.integers(0, 9, len(coords))})
        cluster = Cluster(n_nodes=3)
        cluster.create_array(f"A{schema}", cells)
        cluster.create_array(f"B{schema}", cells, placement="block")
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=1.0)
        result = executor.execute(
            "SELECT A.v FROM A, B WHERE A.lat = B.lat AND A.lon = B.lon",
            planner="tabu",
        )
        assert result.array.n_cells == len(coords)


class TestExtremeBuckets:
    def test_one_bucket(self):
        gen = np.random.default_rng(3)
        coords = np.unique(gen.integers(1, 65, size=(80, 2)), axis=0)
        cluster = two_arrays(
            CellSet(coords, {"v": gen.integers(0, 10, len(coords))}),
            CellSet(coords, {"v": gen.integers(0, 10, len(coords))}),
        )
        executor = ShuffleJoinExecutor(
            cluster, selectivity_hint=0.5, n_buckets=1
        )
        result = executor.execute(
            "SELECT A.i INTO T<ai:int64>[] FROM A, B WHERE A.v = B.v",
            planner="mbh",
            join_algo="hash",
        )
        count_a = Counter(cluster.array_cells("A").attrs["v"].tolist())
        count_b = Counter(cluster.array_cells("B").attrs["v"].tolist())
        assert result.array.n_cells == sum(
            count_a[v] * count_b[v] for v in count_a
        )

    def test_many_more_buckets_than_cells(self):
        gen = np.random.default_rng(4)
        coords = np.unique(gen.integers(1, 65, size=(40, 2)), axis=0)
        cluster = two_arrays(
            CellSet(coords, {"v": gen.integers(0, 10, len(coords))}),
            CellSet(coords, {"v": gen.integers(0, 10, len(coords))}),
        )
        executor = ShuffleJoinExecutor(
            cluster, selectivity_hint=0.5, n_buckets=4096
        )
        result = executor.execute(
            "SELECT A.i INTO T<ai:int64>[] FROM A, B WHERE A.v = B.v",
            planner="tabu",
            join_algo="hash",
        )
        assert result.report.n_units == 4096
        assert result.array.n_cells > 0


class TestPlannersOnDegenerateStats:
    def test_all_planners_handle_empty_stats(self):
        stats = SliceStats(
            np.zeros((8, 3), dtype=np.int64), np.zeros((8, 3), dtype=np.int64)
        )
        model = AnalyticalCostModel(stats, "merge", CostParams())
        for name in PLANNER_NAMES:
            kwargs = {"time_budget_s": 1.0} if "ilp" in name else {}
            plan = get_planner(name, **kwargs).plan(model)
            assert plan.cost.total_seconds == 0.0

    def test_all_planners_single_node_matrix(self):
        gen = np.random.default_rng(5)
        stats = SliceStats(
            gen.integers(0, 50, size=(8, 1)), gen.integers(0, 50, size=(8, 1))
        )
        model = AnalyticalCostModel(stats, "hash", CostParams())
        for name in PLANNER_NAMES:
            kwargs = {"time_budget_s": 1.0} if "ilp" in name else {}
            plan = get_planner(name, **kwargs).plan(model)
            assert (plan.assignment == 0).all()
            assert plan.cost.send_cells == 0


class TestSelfJoin:
    def test_array_joined_with_itself_via_copy(self):
        """The framework joins two named arrays; a self-join is a copy."""
        gen = np.random.default_rng(6)
        coords = np.unique(gen.integers(1, 65, size=(60, 2)), axis=0)
        cells = CellSet(coords, {"v": gen.integers(0, 9, len(coords))})
        cluster = Cluster(n_nodes=3)
        cluster.create_array("A<v:int64>[i=1,64,8, j=1,64,8]", cells)
        copy = LocalArray.from_cells(
            parse_schema("B<v:int64>[i=1,64,8, j=1,64,8]"), cells
        )
        cluster.load_array(copy, placement="block")
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=1.0)
        result = executor.execute(DD_QUERY, planner="mbh")
        assert result.array.n_cells == len(coords)
        # Every matched pair carries equal attribute values (the duplicate
        # select names are disambiguated positionally as v_0 / v_1).
        out = result.cells
        np.testing.assert_array_equal(out.attrs["v_0"], out.attrs["v_1"])
