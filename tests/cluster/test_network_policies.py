"""Tests for the alternative shuffle scheduling policies (ablation)."""

import pytest

from repro.cluster.network import NetworkParams, Transfer, schedule_shuffle

PARAMS = NetworkParams(bandwidth_cells_per_s=1000.0, latency_s=0.0)


def fan_in_transfers():
    """Three senders, all targeting node 9 plus one alternative each."""
    transfers = []
    for src in range(3):
        transfers.append(Transfer(src, 9, 300))
        transfers.append(Transfer(src, 10 + src, 300))
    return transfers


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            schedule_shuffle([], PARAMS, policy="chaotic")

    @pytest.mark.parametrize(
        "policy", ["greedy_lock", "head_of_line", "uncoordinated"]
    )
    def test_conservation_all_policies(self, policy, rng):
        transfers = [
            Transfer(int(s), 4 + int(d), int(n))
            for s, d, n in zip(
                rng.integers(0, 4, 30),
                rng.integers(0, 4, 30),
                rng.integers(1, 100, 30),
            )
        ]
        schedule = schedule_shuffle(transfers, PARAMS, policy=policy)
        assert schedule.n_transfers == len(transfers)
        assert schedule.total_cells_moved == sum(t.n_cells for t in transfers)

    def test_greedy_beats_head_of_line_on_contention(self):
        transfers = fan_in_transfers()
        greedy = schedule_shuffle(transfers, PARAMS, policy="greedy_lock")
        blocking = schedule_shuffle(transfers, PARAMS, policy="head_of_line")
        assert greedy.total_time <= blocking.total_time

    def test_uncoordinated_shares_bandwidth(self):
        # Two simultaneous streams into one receiver: fair sharing makes
        # each take twice as long as it would alone.
        transfers = [Transfer(0, 2, 100), Transfer(1, 2, 100)]
        schedule = schedule_shuffle(transfers, PARAMS, policy="uncoordinated")
        assert schedule.total_time == pytest.approx(0.2, rel=0.01)

    def test_uncoordinated_parallel_when_disjoint(self):
        transfers = [Transfer(0, 2, 100), Transfer(1, 3, 100)]
        schedule = schedule_shuffle(transfers, PARAMS, policy="uncoordinated")
        assert schedule.total_time == pytest.approx(0.1, rel=0.01)

    def test_uncoordinated_sender_serialises(self):
        transfers = [Transfer(0, 2, 100), Transfer(0, 3, 100)]
        schedule = schedule_shuffle(transfers, PARAMS, policy="uncoordinated")
        assert schedule.total_time == pytest.approx(0.2, rel=0.01)

    def test_uncoordinated_latency_lead_in(self):
        params = NetworkParams(bandwidth_cells_per_s=1000.0, latency_s=0.05)
        schedule = schedule_shuffle(
            [Transfer(0, 1, 100)], params, policy="uncoordinated"
        )
        assert schedule.total_time == pytest.approx(0.15, rel=0.01)


class TestTabuListOption:
    def test_without_list_matches_with_list_quality(self, rng):
        import numpy as np

        from repro.core.cost_model import AnalyticalCostModel, CostParams
        from repro.core.planners.tabu import TabuPlanner
        from repro.core.slices import SliceStats

        stats = SliceStats(
            rng.integers(0, 60, size=(40, 4)), rng.integers(0, 60, size=(40, 4))
        )
        model = AnalyticalCostModel(stats, "hash", CostParams())
        with_list = TabuPlanner(use_tabu_list=True).assign(model)
        without = TabuPlanner(use_tabu_list=False).assign(model)
        cost_with = model.plan_cost(with_list[0]).total_seconds
        cost_without = model.plan_cost(without[0]).total_seconds
        assert cost_with == pytest.approx(cost_without, rel=0.1)
        assert np.all(with_list[0] >= 0)
