"""Tests for rebalance, integrity validation, and describe."""

import numpy as np
import pytest

from repro.adm import CellSet
from repro.cluster import Cluster
from repro.engine import ShuffleJoinExecutor
from repro.workloads import ais_tracks


class TestRebalance:
    def test_levels_skewed_storage(self):
        cluster = Cluster(n_nodes=4)
        # Block placement of the heavily skewed AIS array concentrates
        # the port chunks on few nodes.
        cluster.load_array(ais_tracks(cells=40_000, seed=1), placement="block")
        before = cluster.node_cell_counts("Broadcast")
        schedule = cluster.rebalance("Broadcast")
        after = cluster.node_cell_counts("Broadcast")
        assert after.sum() == before.sum()
        assert after.max() - after.min() < before.max() - before.min()
        assert schedule.total_cells_moved > 0
        assert schedule.total_time > 0
        assert cluster.validate_integrity("Broadcast") == []

    def test_rebalance_is_idempotent_on_traffic(self):
        cluster = Cluster(n_nodes=3)
        cluster.load_array(ais_tracks(cells=20_000, seed=2), placement="block")
        cluster.rebalance("Broadcast")
        second = cluster.rebalance("Broadcast")
        assert second.total_cells_moved == 0

    def test_queries_still_correct_after_rebalance(self):
        gen = np.random.default_rng(3)
        cluster = Cluster(n_nodes=3)
        coords = np.unique(gen.integers(1, 33, size=(400, 2)), axis=0)
        for name, placement in (("A", "block"), ("B", "round_robin")):
            cluster.create_array(
                f"{name}<v:int64>[i=1,32,8, j=1,32,8]",
                CellSet(coords, {"v": gen.integers(0, 9, len(coords))}),
                placement=placement,
            )
        cluster.rebalance("A")
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=1.0)
        result = executor.execute(
            "SELECT A.v FROM A, B WHERE A.i = B.i AND A.j = B.j",
            planner="mbh",
        )
        assert result.array.n_cells == len(coords)

    def test_rebalance_invalidates_statistics(self):
        cluster = Cluster(n_nodes=2)
        cluster.load_array(ais_tracks(cells=10_000, seed=4), placement="block")
        cluster.statistics("Broadcast")
        cluster.rebalance("Broadcast")
        assert not cluster.catalog.entry("Broadcast").statistics_fresh


class TestIntegrity:
    def make(self):
        gen = np.random.default_rng(5)
        cluster = Cluster(n_nodes=3)
        coords = np.unique(gen.integers(1, 33, size=(300, 2)), axis=0)
        cluster.create_array(
            "A<v:int64>[i=1,32,8, j=1,32,8]",
            CellSet(coords, {"v": gen.integers(0, 9, len(coords))}),
        )
        return cluster

    def test_healthy_cluster(self):
        cluster = self.make()
        assert cluster.validate_integrity("A") == []

    def test_detects_missing_chunk(self):
        cluster = self.make()
        entry = cluster.catalog.entry("A")
        chunk_id, node_id = next(iter(entry.chunk_locations.items()))
        cluster.nodes[node_id].store("A").chunks.pop(chunk_id)
        problems = cluster.validate_integrity("A")
        assert any("no node stores it" in p for p in problems)

    def test_detects_misplaced_chunk(self):
        cluster = self.make()
        entry = cluster.catalog.entry("A")
        chunk_id, node_id = next(iter(entry.chunk_locations.items()))
        chunk = cluster.nodes[node_id].store("A").chunks.pop(chunk_id)
        other = (node_id + 1) % cluster.n_nodes
        cluster.nodes[other].store("A").chunks[chunk_id] = chunk
        problems = cluster.validate_integrity("A")
        assert any("but node" in p for p in problems)

    def test_detects_orphan_chunk(self):
        cluster = self.make()
        entry = cluster.catalog.entry("A")
        chunk_id, node_id = next(iter(entry.chunk_locations.items()))
        del entry.chunk_locations[chunk_id]
        problems = cluster.validate_integrity("A")
        assert any("without a catalog record" in p for p in problems)


class TestSessionAdminSurface:
    def test_rebalance_and_validate(self):
        from repro import Session

        session = Session(n_nodes=3)
        session.cluster.load_array(
            ais_tracks(cells=15_000, seed=7), placement="block"
        )
        schedule = session.rebalance("Broadcast")
        assert schedule.total_cells_moved > 0
        assert session.validate("Broadcast") == []


class TestDescribe:
    def test_summary_contents(self):
        from repro import Session

        gen = np.random.default_rng(6)
        session = Session(n_nodes=2)
        coords = np.unique(gen.integers(1, 33, size=(250, 2)), axis=0)
        session.create_and_load(
            "A<v:int64, w:float64>[i=1,32,8, j=1,32,8]",
            CellSet(
                coords,
                {
                    "v": gen.integers(0, 500, len(coords)),
                    "w": gen.uniform(0, 1, len(coords)),
                },
            ),
        )
        text = session.describe("A")
        assert "A<v:int64, w:float64>" in text
        assert f"cells:        {len(coords)}" in text
        assert "per node:" in text
        assert "v: range" in text
