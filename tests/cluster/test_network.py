"""Unit tests for the discrete-event write-lock shuffle schedule."""

from collections import deque

import pytest

from repro.cluster.network import (
    NetworkParams,
    Transfer,
    TransferEvent,
    schedule_shuffle,
)

PARAMS = NetworkParams(bandwidth_cells_per_s=1000.0, latency_s=0.0)


def overlapping(events, key):
    """Return True if any two events sharing `key` overlap in time."""
    by_key: dict = {}
    for event in events:
        by_key.setdefault(key(event), []).append((event.start, event.end))
    for spans in by_key.values():
        spans.sort()
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            if s2 < e1 - 1e-12:
                return True
    return False


class TestTransfer:
    def test_rejects_self_transfer(self):
        with pytest.raises(ValueError):
            Transfer(src=1, dst=1, n_cells=10)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Transfer(src=0, dst=1, n_cells=-1)


class TestScheduleInvariants:
    def test_empty(self):
        schedule = schedule_shuffle([], PARAMS)
        assert schedule.total_time == 0.0
        assert schedule.n_transfers == 0

    def test_single_transfer_time(self):
        schedule = schedule_shuffle([Transfer(0, 1, 500)], PARAMS)
        assert schedule.total_time == pytest.approx(0.5)

    def test_latency_added(self):
        params = NetworkParams(bandwidth_cells_per_s=1000.0, latency_s=0.1)
        schedule = schedule_shuffle([Transfer(0, 1, 500)], params)
        assert schedule.total_time == pytest.approx(0.6)

    def test_sender_serialises(self):
        transfers = [Transfer(0, 1, 100), Transfer(0, 2, 100)]
        schedule = schedule_shuffle(transfers, PARAMS)
        assert not overlapping(schedule.events, lambda e: e.transfer.src)
        assert schedule.total_time == pytest.approx(0.2)

    def test_write_lock_serialises_receivers(self):
        transfers = [Transfer(0, 2, 100), Transfer(1, 2, 100)]
        schedule = schedule_shuffle(transfers, PARAMS)
        assert not overlapping(schedule.events, lambda e: e.transfer.dst)
        assert schedule.total_time == pytest.approx(0.2)

    def test_parallel_disjoint_pairs(self):
        transfers = [Transfer(0, 1, 100), Transfer(2, 3, 100)]
        schedule = schedule_shuffle(transfers, PARAMS)
        assert schedule.total_time == pytest.approx(0.1)

    def test_greedy_skips_locked_destination(self):
        # Sender 0 (scheduled first) grabs node 2's lock with a long
        # transfer; sender 1's first slice also targets node 2, so the
        # greedy rule lets it ship its second slice (to node 3) meanwhile
        # and poll for node 2's lock afterwards.
        transfers = [
            Transfer(0, 2, 1000),  # long transfer grabs node 2's lock
            Transfer(1, 2, 100),
            Transfer(1, 3, 100),
        ]
        schedule = schedule_shuffle(transfers, PARAMS)
        by_pair = {
            (e.transfer.src, e.transfer.dst): e for e in schedule.events
        }
        assert by_pair[(1, 3)].start == pytest.approx(0.0)
        assert by_pair[(1, 2)].start == pytest.approx(1.0)

    def test_conservation(self, rng):
        transfers = [
            Transfer(int(s), int(d), int(n))
            for s, d, n in zip(
                rng.integers(0, 4, 40),
                rng.integers(4, 8, 40),
                rng.integers(1, 100, 40),
            )
        ]
        schedule = schedule_shuffle(transfers, PARAMS)
        assert schedule.total_cells_moved == sum(t.n_cells for t in transfers)
        assert sum(schedule.cells_sent.values()) == schedule.total_cells_moved
        assert (
            sum(schedule.cells_received.values()) == schedule.total_cells_moved
        )

    def test_all_transfers_scheduled(self, rng):
        transfers = []
        for _ in range(100):
            src, dst = rng.choice(6, size=2, replace=False)
            transfers.append(Transfer(int(src), int(dst), int(rng.integers(1, 50))))
        schedule = schedule_shuffle(transfers, PARAMS)
        assert schedule.n_transfers == 100
        assert not overlapping(schedule.events, lambda e: e.transfer.src)
        assert not overlapping(schedule.events, lambda e: e.transfer.dst)

    def test_deterministic(self, rng):
        transfers = [
            Transfer(int(s), 5 + int(d), int(n))
            for s, d, n in zip(
                rng.integers(0, 4, 30),
                rng.integers(0, 3, 30),
                rng.integers(1, 100, 30),
            )
        ]
        first = schedule_shuffle(transfers, PARAMS)
        second = schedule_shuffle(transfers, PARAMS)
        assert first.total_time == second.total_time
        assert [e.transfer for e in first.events] == [
            e.transfer for e in second.events
        ]

    def test_zero_size_transfers_all_start(self):
        # Zero-cell slices with zero latency finish instantly; the
        # scheduler must let their sender continue at the same instant.
        params = NetworkParams(bandwidth_cells_per_s=1000.0, latency_s=0.0)
        transfers = [Transfer(0, 1, 0), Transfer(0, 2, 0), Transfer(0, 3, 50)]
        schedule = schedule_shuffle(transfers, params)
        assert schedule.n_transfers == 3
        assert schedule.total_time == pytest.approx(0.05)

    def test_makespan_lower_bound(self, rng):
        """The schedule can never beat the per-link volume bounds."""
        transfers = [
            Transfer(int(s), 4 + int(d), int(n))
            for s, d, n in zip(
                rng.integers(0, 4, 60),
                rng.integers(0, 4, 60),
                rng.integers(1, 200, 60),
            )
        ]
        schedule = schedule_shuffle(transfers, PARAMS)
        max_send = max(schedule.cells_sent.values())
        max_recv = max(schedule.cells_received.values())
        bound = max(max_send, max_recv) / PARAMS.bandwidth_cells_per_s
        assert schedule.total_time >= bound - 1e-9


# --------------------------------------------------------------------------
# Equivalence against the straight O(events x queued-transfers) simulation
# the event-driven scheduler replaced. The reference walks every sender's
# whole queue on every poll; the production code must produce the exact
# same schedule (same events, same starts and ends) in every case.


def _reference_locked_schedule(transfers, params, greedy):
    """The original polling implementation, kept verbatim as an oracle."""
    queues = {}
    for transfer in transfers:
        queues.setdefault(transfer.src, deque()).append(transfer)
    sender_free = {src: 0.0 for src in queues}
    lock_free = {}
    events = []
    now = 0.0
    remaining = sum(len(q) for q in queues.values())
    while remaining:
        progressed = False
        for src in sorted(queues):
            queue = queues[src]
            if not queue or sender_free[src] > now:
                continue
            candidates = enumerate(queue) if greedy else [(0, queue[0])]
            for position, transfer in candidates:
                if lock_free.get(transfer.dst, 0.0) <= now:
                    del queue[position]
                    end = now + params.transfer_time(transfer.n_cells)
                    sender_free[src] = end
                    lock_free[transfer.dst] = end
                    events.append(TransferEvent(transfer, start=now, end=end))
                    remaining -= 1
                    progressed = True
                    break
        if remaining and not progressed:
            horizon = [sender_free[src] for src, q in queues.items() if q] + [
                lock_free.get(t.dst, 0.0)
                for q in queues.values()
                for t in q
            ]
            upcoming = [time for time in horizon if time > now]
            now = min(upcoming)
    return events


class TestEventDrivenEquivalence:
    @pytest.mark.parametrize("policy", ["greedy_lock", "head_of_line"])
    @pytest.mark.parametrize("latency", [0.0, 0.01])
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_schedule(self, policy, latency, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 80))
        transfers = []
        for _ in range(n):
            src, dst = rng.choice(8, size=2, replace=False)
            # Include zero-size slices: with zero latency they complete
            # instantly, the hardest case for event bookkeeping.
            transfers.append(
                Transfer(int(src), int(dst), int(rng.integers(0, 60)))
            )
        params = NetworkParams(bandwidth_cells_per_s=500.0, latency_s=latency)
        expected = _reference_locked_schedule(
            transfers, params, greedy=policy == "greedy_lock"
        )
        actual = schedule_shuffle(transfers, params, policy=policy)
        assert [e.transfer for e in actual.events] == [
            e.transfer for e in expected
        ]
        assert [e.start for e in actual.events] == pytest.approx(
            [e.start for e in expected]
        )
        assert [e.end for e in actual.events] == pytest.approx(
            [e.end for e in expected]
        )
