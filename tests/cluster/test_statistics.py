"""Tests for catalog-resident statistics (ANALYZE)."""

import numpy as np
import pytest

from repro.adm import CellSet
from repro.cluster import Cluster
from repro.workloads import ais_tracks


def make_cluster(n=500, seed=0):
    gen = np.random.default_rng(seed)
    cluster = Cluster(n_nodes=3)
    coords = np.unique(gen.integers(1, 65, size=(n, 2)), axis=0)
    cluster.create_array(
        "A<v:int64, w:float64>[i=1,64,8, j=1,64,8]",
        CellSet(
            coords,
            {
                "v": gen.integers(0, 1000, len(coords)),
                "w": gen.uniform(0, 1, len(coords)),
            },
        ),
    )
    return cluster


class TestAnalyze:
    def test_cell_count_and_histograms(self):
        cluster = make_cluster()
        stats = cluster.analyze("A")
        assert stats.cell_count == cluster.array_cell_count("A")
        assert set(stats.histograms) == {"v", "w"}
        assert stats.histograms["v"].total == stats.cell_count

    def test_histogram_range_covers_data(self):
        cluster = make_cluster()
        stats = cluster.analyze("A")
        values = cluster.array_cells("A").attrs["v"]
        assert stats.histograms["v"].low <= values.min()
        assert stats.histograms["v"].high >= values.max()

    def test_skew_statistics(self):
        cluster = Cluster(n_nodes=2)
        cluster.load_array(ais_tracks(cells=30_000, seed=1))
        stats = cluster.analyze("Broadcast")
        assert stats.top_share > 0.5  # AIS hotspots
        assert stats.max_chunk_cells > 100

    def test_cached_until_load(self):
        cluster = make_cluster()
        first = cluster.statistics("A")
        second = cluster.statistics("A")
        assert first is second  # cache hit

    def test_invalidated_by_insert(self):
        cluster = make_cluster()
        first = cluster.statistics("A")
        gen = np.random.default_rng(9)
        extra = CellSet(
            np.array([[1, 1]]),
            {"v": np.array([5000]), "w": np.array([0.5])},
        )
        cluster.insert_cells("A", extra)
        second = cluster.statistics("A")
        assert second is not first
        assert second.cell_count == first.cell_count + 1
        # The new outlier value widened the histogram.
        assert second.histograms["v"].high >= 5000

    def test_empty_array(self):
        cluster = Cluster(n_nodes=2)
        cluster.create_empty_array("E<v:int64>[i=1,8,4]")
        stats = cluster.analyze("E")
        assert stats.cell_count == 0
        assert stats.histograms == {}
        assert stats.top_share == 0.0

    def test_planner_uses_cached_stats(self):
        """An A:A join's dimension inference reads the cached histogram."""
        from repro.engine import ShuffleJoinExecutor

        cluster = make_cluster()
        gen = np.random.default_rng(2)
        coords = np.unique(gen.integers(1, 65, size=(400, 2)), axis=0)
        cluster.create_array(
            "B<v:int64, w:float64>[i=1,64,8, j=1,64,8]",
            CellSet(
                coords,
                {
                    "v": gen.integers(0, 1000, len(coords)),
                    "w": gen.uniform(0, 1, len(coords)),
                },
            ),
            placement="block",
        )
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.1)
        result = executor.execute(
            "SELECT A.i INTO T<ai:int64>[] FROM A, B WHERE A.v = B.v",
            planner="mbh",
        )
        assert result.join_schema.chunkable  # histogram-inferred dimension
        assert cluster.catalog.entry("A").statistics_fresh
        assert cluster.catalog.entry("B").statistics_fresh
