"""Unit tests for the cluster facade, nodes, and catalog."""

import numpy as np
import pytest

from repro.adm import CellSet, LocalArray, parse_schema
from repro.cluster import Cluster
from repro.errors import CatalogError, SchemaError


def sample_cells(n=40, extent=64, seed=0):
    gen = np.random.default_rng(seed)
    coords = np.unique(gen.integers(1, extent + 1, size=(n, 2)), axis=0)
    return CellSet(coords, {"v": gen.integers(0, 9, len(coords))})


SCHEMA = "A<v:int64>[i=1,64,8, j=1,64,8]"


class TestCreateArray:
    def test_round_robin_placement(self):
        cluster = Cluster(n_nodes=4)
        cluster.create_array(SCHEMA, sample_cells())
        entry = cluster.catalog.entry("A")
        nodes = [entry.chunk_locations[cid] for cid in sorted(entry.chunk_locations)]
        assert nodes == [rank % 4 for rank in range(len(nodes))]

    def test_block_placement_contiguous(self):
        cluster = Cluster(n_nodes=4)
        cluster.create_array(SCHEMA, sample_cells(), placement="block")
        entry = cluster.catalog.entry("A")
        nodes = [entry.chunk_locations[cid] for cid in sorted(entry.chunk_locations)]
        assert nodes == sorted(nodes)

    def test_balanced_placement_levels_cells(self):
        # A skewed array: one giant chunk plus many small ones.
        gen = np.random.default_rng(1)
        big = np.stack(
            [np.full(60, 1), np.arange(1, 61) % 8 + 1], axis=1
        )
        small = np.unique(gen.integers(9, 65, size=(80, 2)), axis=0)
        cells = CellSet(
            np.concatenate([big, small]),
            {"v": gen.integers(0, 9, len(big) + len(small))},
        )
        cells = CellSet(*_dedupe(cells))
        cluster = Cluster(n_nodes=4)
        cluster.create_array(SCHEMA, cells, placement="balanced")
        counts = cluster.node_cell_counts("A")
        assert counts.max() - counts.min() <= max(10, counts.max() // 2)

    def test_explicit_mapping(self):
        cluster = Cluster(n_nodes=2)
        array = LocalArray.from_cells(parse_schema(SCHEMA), sample_cells())
        mapping = {cid: 1 for cid in array.chunks}
        cluster.load_array(array, placement=mapping)
        assert cluster.node_cell_counts("A")[1] == array.n_cells

    def test_mapping_must_cover_chunks(self):
        cluster = Cluster(n_nodes=2)
        with pytest.raises(SchemaError):
            cluster.create_array(SCHEMA, sample_cells(), placement={0: 0})

    def test_invalid_node_id_rejected(self):
        cluster = Cluster(n_nodes=2)
        with pytest.raises(SchemaError):
            cluster.create_array(
                SCHEMA, sample_cells(), placement=lambda ids, k: [9] * len(ids)
            )

    def test_unknown_policy_rejected(self):
        cluster = Cluster(n_nodes=2)
        with pytest.raises(SchemaError):
            cluster.create_array(SCHEMA, sample_cells(), placement="mystery")

    def test_duplicate_name_rejected(self):
        cluster = Cluster(n_nodes=2)
        cluster.create_array(SCHEMA, sample_cells())
        with pytest.raises(CatalogError):
            cluster.create_array(SCHEMA, sample_cells())


def _dedupe(cells: CellSet):
    packed = cells.to_structured(sorted(cells.attrs))
    _, index = np.unique(
        packed[[f"__dim{i}" for i in range(cells.ndims)]], return_index=True
    )
    kept = cells.take(np.sort(index))
    return kept.coords, kept.attrs


class TestAccess:
    def test_gather_roundtrip(self):
        cluster = Cluster(n_nodes=3)
        cells = sample_cells()
        cluster.create_array(SCHEMA, cells)
        assert cluster.array_cells("A").same_cells(cells)
        assert cluster.array_cell_count("A") == len(cells)

    def test_chunk_node_matrix_one_owner_per_chunk(self):
        cluster = Cluster(n_nodes=3)
        cluster.create_array(SCHEMA, sample_cells())
        matrix = cluster.chunk_node_matrix("A")
        occupied = matrix.sum(axis=1) > 0
        assert ((matrix[occupied] > 0).sum(axis=1) == 1).all()
        assert matrix.sum() == cluster.array_cell_count("A")

    def test_drop_array(self):
        cluster = Cluster(n_nodes=2)
        cluster.create_array(SCHEMA, sample_cells())
        cluster.drop_array("A")
        assert not cluster.catalog.exists("A")
        with pytest.raises(CatalogError):
            cluster.schema("A")

    def test_node_bounds(self):
        cluster = Cluster(n_nodes=2)
        with pytest.raises(CatalogError):
            cluster.node(2)

    def test_catalog_chunk_location(self):
        cluster = Cluster(n_nodes=2)
        cluster.create_array(SCHEMA, sample_cells())
        entry = cluster.catalog.entry("A")
        some_chunk = next(iter(entry.chunk_locations))
        node = cluster.catalog.chunk_location("A", some_chunk)
        assert cluster.node(node).local_chunk_sizes("A")[some_chunk] > 0

    def test_missing_chunk_location(self):
        cluster = Cluster(n_nodes=2)
        cluster.create_array(SCHEMA, sample_cells())
        with pytest.raises(CatalogError):
            cluster.catalog.chunk_location("A", 10_000)


class TestClusterParams:
    def test_positive_node_count_required(self):
        with pytest.raises(ValueError):
            Cluster(n_nodes=0)
