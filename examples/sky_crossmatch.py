#!/usr/bin/env python
"""Astronomy cross-match — the paper's opening motivation.

The introduction motivates the framework with sky surveys: nightly
catalogs of stars "not uniformly distributed in the sky", cross-matched
between epochs to find variable objects. This example runs that workflow:

1. two epoch catalogs with galactic-plane density hotspots;
2. a skew-aware D:D join cross-matching detections by sky position,
   with a pushed-down brightness filter;
3. APPLY + REGRID to map where the strongest variables live.
"""

import numpy as np

from repro import Session
from repro.workloads import epoch_pair


def main() -> None:
    session = Session(n_nodes=4, selectivity_hint=0.6)

    print("generating two survey epochs ...")
    epoch1, epoch2 = epoch_pair(objects=40_000, seed=11)
    session.cluster.load_array(epoch1)
    session.cluster.load_array(epoch2, placement="block")
    share = epoch1.skew_summary(0.05)["top_share"]
    print(f"Epoch1: {epoch1.n_cells} detections over {epoch1.n_chunks} sky "
          f"chunks; top 5% of chunks hold {share:.0%} (galactic plane)")

    print("\ncross-matching epochs: same sky cell AND same object id — a "
          "mixed D:D + A:A predicate — with a pushed-down brightness "
          "filter ...")
    query = (
        "SELECT Epoch1.mag AS m1, Epoch2.mag AS m2 "
        "FROM Epoch1, Epoch2 "
        "WHERE Epoch1.ra = Epoch2.ra AND Epoch1.dec = Epoch2.dec "
        "AND Epoch1.obj_id = Epoch2.obj_id "
        "AND Epoch1.mag < 21 AND Epoch2.mag < 21"
    )
    explain = session.explain(query)
    print(f"join kind: {explain.join_kind}; chosen plan: {explain.chosen_afl}")
    result = session.execute(query, planner="tabu")
    print(result.report.describe())
    matches = result.cells
    print(f"re-detected bright objects: {len(matches)}")

    print("\nvariability across epochs:")
    delta = np.abs(matches.attrs["m1"] - matches.attrs["m2"])
    print(f"median |Δmag| = {np.median(delta):.3f} "
          f"(measurement scatter ≈ 0.05·√2 ≈ 0.07)")
    strong = int((delta > 0.2).sum())
    print(f"candidate variables (|Δmag| > 0.2): {strong} "
          f"({strong / max(len(delta), 1):.1%} of re-detections)")

    print("\ndensity map of the survey itself (REGRID):")
    tiles = session.afl("regrid(Epoch1, 12, 12, count(*) AS n)")
    dense = tiles.to_dense("n", fill_value=0)
    scale = dense.max() / 8 if dense.max() else 1
    for dec_band in range(dense.shape[1] - 1, -1, -3):
        row = "".join(
            " .:-=+*#%@"[min(int(dense[ra, dec_band] / scale), 9)]
            for ra in range(0, dense.shape[0], 1)
        )
        print("   " + row)
    print("   (each column ≈ 12° of right ascension; bright band = "
          "galactic plane)")


if __name__ == "__main__":
    main()
