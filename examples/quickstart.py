#!/usr/bin/env python
"""Quickstart: create arrays, run AQL joins, inspect the chosen plans.

Walks through the paper's core workflow on a small 4-node cluster:

1. define SciDB-style array schemas and load sparse cells;
2. run a D:D merge join (the spatially-aligned fast path);
3. run an A:A join, where the optimizer must reorganise the data;
4. compare physical planners on the same query.
"""

import numpy as np

from repro import CellSet, Cluster, ShuffleJoinExecutor


def build_cluster(seed: int = 7) -> Cluster:
    """A 4-node cluster holding two 64x64 sensor arrays.

    Array A holds instrument readings; array B holds a calibration layer
    recorded on the same grid. The arrays are deliberately loaded with
    different chunk placements, so joining them requires a shuffle.
    """
    rng = np.random.default_rng(seed)
    cluster = Cluster(n_nodes=4)

    coords = np.unique(rng.integers(1, 65, size=(3000, 2)), axis=0)
    cluster.create_array(
        "A<reading:float64, sensor:int64>[x=1,64,8, y=1,64,8]",
        CellSet(
            coords,
            {
                "reading": rng.normal(20.0, 5.0, len(coords)),
                "sensor": rng.integers(0, 50, len(coords)),
            },
        ),
        placement="round_robin",
    )

    coords_b = np.unique(rng.integers(1, 65, size=(3000, 2)), axis=0)
    cluster.create_array(
        "B<offset:float64, sensor:int64>[x=1,64,8, y=1,64,8]",
        CellSet(
            coords_b,
            {
                "offset": rng.normal(0.0, 1.0, len(coords_b)),
                "sensor": rng.integers(0, 50, len(coords_b)),
            },
        ),
        placement="block",
    )
    return cluster


def main() -> None:
    cluster = build_cluster()
    executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.4)

    print("=== 1. Filter query (AQL -> AFL) ===")
    hot = executor.execute_filter("SELECT * FROM A WHERE reading > 28")
    print(f"cells with reading > 28: {hot.n_cells}\n")

    print("=== 2. D:D merge join: calibrate readings cell by cell ===")
    result = executor.execute(
        "SELECT A.reading - B.offset AS calibrated "
        "FROM A JOIN B ON A.x = B.x AND A.y = B.y",
        planner="mbh",
    )
    print("logical plan (AFL):", result.report.logical_afl)
    print(result.report.describe())
    print(f"output schema: {result.array.schema.to_literal()}\n")

    print("=== 3. A:A join: match cells by sensor id ===")
    result = executor.execute(
        "SELECT A.x, A.y, B.x, B.y "
        "INTO Pairs<ax:int64, ay:int64, bx:int64, by:int64>[] "
        "FROM A, B WHERE A.sensor = B.sensor",
        planner="tabu",
        join_algo="hash",
    )
    print("logical plan (AFL):", result.report.logical_afl)
    print(result.report.describe())
    print(f"matched position pairs: {result.array.n_cells}\n")

    print("=== 4. Physical planner comparison on the D:D join ===")
    query = (
        "SELECT A.reading - B.offset AS calibrated "
        "FROM A, B WHERE A.x = B.x AND A.y = B.y"
    )
    print(f"{'planner':<12}{'plan(s)':>9}{'align(s)':>10}"
          f"{'compare(s)':>12}{'moved':>9}")
    for planner in ("baseline", "mbh", "tabu", "ilp_coarse"):
        quick = ShuffleJoinExecutor(
            cluster, selectivity_hint=0.4, ilp_time_budget_s=1.0
        )
        report = quick.execute(query, planner=planner).report
        print(
            f"{planner:<12}{report.plan_seconds:>9.3f}"
            f"{report.align_seconds:>10.4f}{report.compare_seconds:>12.4f}"
            f"{report.cells_moved:>9}"
        )


if __name__ == "__main__":
    main()
