#!/usr/bin/env python
"""Adversarial skew: the NDVI band join — Section 6.3.2.

The normalized difference vegetation index compares two MODIS reflectance
bands recorded by the same sensor:

    NDVI = (band2 - band1) / (band2 + band1)

Because both bands sample the same locations, corresponding chunks are
nearly identical in size — *adversarial* skew, with no cheap side to
move. The experiment demonstrates that the skew-aware planners cost
nothing when there is no skew to exploit: every planner's execution time
is comparable.
"""

import numpy as np

from repro.bench.experiments import NDVI_QUERY, make_cluster
from repro.engine import ShuffleJoinExecutor
from repro.workloads import modis_pair


def main() -> None:
    print("generating two correlated MODIS bands ...")
    band1, band2 = modis_pair(cells=120_000, seed=3)

    sizes1 = band1.chunk_sizes()
    sizes2 = band2.chunk_sizes()
    common = sorted(set(sizes1) & set(sizes2))
    diffs = np.array([abs(sizes1[c] - sizes2[c]) for c in common])
    means = np.array([(sizes1[c] + sizes2[c]) / 2 for c in common])
    print(f"joining chunks differ by {diffs.mean():.1f} cells on average "
          f"against a mean chunk size of {means.mean():.0f} "
          f"({diffs.sum() / means.sum():.1%} — the paper quotes ~1.5%)")
    print()
    print("query:", NDVI_QUERY)
    print()

    print(f"{'planner':<12}{'align(s)':>10}{'compare(s)':>12}"
          f"{'exec(s)':>10}{'ndvi cells':>12}")
    exec_times = []
    for planner in ("baseline", "mbh", "tabu"):
        cluster = make_cluster([band1, band2], n_nodes=4, seed=4)
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.5)
        result = executor.execute(NDVI_QUERY, planner=planner, join_algo="merge")
        report = result.report
        exec_times.append(report.execute_seconds)
        print(
            f"{planner:<12}{report.align_seconds:>10.3f}"
            f"{report.compare_seconds:>12.3f}"
            f"{report.execute_seconds:>10.3f}{report.output_cells:>12}"
        )
        if planner == "baseline":
            ndvi = result.cells.attrs["ndvi"]
            print(f"{'':12}  sample NDVI range: "
                  f"[{ndvi.min():+.3f}, {ndvi.max():+.3f}], "
                  f"mean {ndvi.mean():+.3f}")

    print()
    print(f"max/min execution-time ratio across planners: "
          f"{max(exec_times) / min(exec_times):.2f} "
          f"(comparable, as the paper reports)")


if __name__ == "__main__":
    main()
