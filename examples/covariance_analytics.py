#!/usr/bin/env python
"""Complex analytics on joined arrays — the paper's second future-work item.

Section 8 asks about "generalizing this two-step optimization model to
complex analytics that combine arrays, such as covariance matrix
queries". This example composes the reproduced framework's pieces to
answer one such query: the per-latitude-band covariance between two
MODIS reflectance bands.

    cov(X, Y) = E[XY] - E[X]·E[Y]

Pipeline: skew-aware D:D shuffle join (pairs the bands cell by cell) →
APPLY (compute the XY product) → AGGREGATE ... GROUP BY (moment sums per
latitude band) → a final vectorised pass for the covariance itself.
"""

import numpy as np

from repro import Session
from repro.workloads import modis_pair


def main() -> None:
    session = Session(n_nodes=4, selectivity_hint=0.5)

    print("loading two MODIS bands ...")
    band1, band2 = modis_pair(cells=80_000, seed=5)
    session.cluster.load_array(band1)
    session.cluster.load_array(band2, placement="block")

    print("joining bands cell by cell (skew-aware merge join) ...")
    joined = session.execute(
        "SELECT Band1.reflectance AS x, Band2.reflectance AS y "
        "FROM Band1, Band2 "
        "WHERE Band1.time = Band2.time AND Band1.lon = Band2.lon "
        "AND Band1.lat = Band2.lat",
        planner="mbh",
    )
    print(joined.report.describe())
    session.cluster.load_array(joined.array)

    print("\ncomputing per-latitude moments (APPLY + AGGREGATE) ...")
    name = joined.array.schema.name
    moments = session.afl(
        f"aggregate(apply({name}, xy, x * y), "
        f"sum(xy) AS sxy, sum(x) AS sx, sum(y) AS sy, count(*) AS n, lat)"
    )
    cells = moments.cells()
    n = cells.attrs["n"].astype(np.float64)
    covariance = cells.attrs["sxy"] / n - (
        (cells.attrs["sx"] / n) * (cells.attrs["sy"] / n)
    )

    print(f"\n{'lat band':>9} {'pairs':>7} {'cov(X,Y)':>10}")
    order = np.argsort(cells.coords[:, 0])
    for index in order[:: max(len(order) // 12, 1)]:
        lat = int(cells.coords[index, 0])
        print(f"{lat:>9} {int(n[index]):>7} {covariance[index]:>10.5f}")

    # The bands are independent uniforms in this simulacrum, so the
    # covariances hover near zero — the point here is the *pipeline*.
    weighted = float(np.average(covariance, weights=n))
    print(f"\ncell-weighted mean covariance: {weighted:+.5f} "
          f"(independent bands → ≈ 0)")


if __name__ == "__main__":
    main()
