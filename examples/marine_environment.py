#!/usr/bin/env python
"""Beneficial skew on (simulated) real-world data — Section 6.3.1.

Marine scientists study the environmental impact of shipping by joining
satellite reflectance measurements (MODIS) against vessel location
broadcasts (AIS) on the geospatial dimensions alone. The AIS data is
severely skewed — most broadcasts cluster around major ports — while the
satellite coverage is near-uniform, which makes the join a showcase for
*beneficial* skew: a skew-aware planner moves the sparse satellite slices
to the dense ship-track hotspots instead of the other way around.
"""

from repro.bench.experiments import AIS_MODIS_QUERY, make_cluster
from repro.cluster import NetworkParams
from repro.engine import ShuffleJoinExecutor
from repro.workloads import ais_tracks, modis_pair


def main() -> None:
    print("generating workloads ...")
    band1, _ = modis_pair(cells=120_000, seed=0)
    broadcasts = ais_tracks(cells=80_000, seed=1)

    print(f"MODIS band:   {band1.n_cells} cells over {band1.n_chunks} chunks; "
          f"top 5% of chunks hold "
          f"{band1.skew_summary(0.05)['top_share']:.0%} of the data")
    print(f"AIS tracks:   {broadcasts.n_cells} cells over "
          f"{broadcasts.n_chunks} chunks; top 5% hold "
          f"{broadcasts.skew_summary(0.05)['top_share']:.0%} of the data")
    print()
    print("query:", AIS_MODIS_QUERY)
    print()

    print(f"{'planner':<12}{'plan(s)':>9}{'align(s)':>10}"
          f"{'compare(s)':>12}{'total(s)':>10}{'cells moved':>13}")
    results = {}
    for planner in ("baseline", "mbh", "tabu"):
        cluster = make_cluster(
            [band1, broadcasts], n_nodes=4, seed=2,
            placement=["random", "balanced"],
            network=NetworkParams(bandwidth_cells_per_s=50_000.0),
        )
        executor = ShuffleJoinExecutor(cluster, selectivity_hint=1.0)
        report = executor.execute(
            AIS_MODIS_QUERY, planner=planner, join_algo="merge"
        ).report
        results[planner] = report
        print(
            f"{planner:<12}{report.plan_seconds:>9.3f}"
            f"{report.align_seconds:>10.3f}{report.compare_seconds:>12.3f}"
            f"{report.total_seconds:>10.3f}{report.cells_moved:>13}"
        )

    base = results["baseline"]
    best = min(results.values(), key=lambda r: r.execute_seconds)
    print()
    print(f"skew-aware speedup over the baseline: "
          f"{base.execute_seconds / best.execute_seconds:.2f}x "
          f"(paper reports nearly 2.5x)")
    print(f"data-alignment reduction: "
          f"{base.align_seconds / best.align_seconds:.1f}x "
          f"(the planners move sparse satellite slices to the ports, "
          f"not the ports to the satellite)")


if __name__ == "__main__":
    main()
