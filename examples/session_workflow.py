#!/usr/bin/env python
"""A full database session: DDL, incremental loads, AQL, AFL, EXPLAIN.

Shows the high-level :class:`repro.Session` facade end to end, the way a
SciDB user would work: declare arrays, load observations in batches, ask
the optimizer to EXPLAIN its plan choices, and run the same analysis
through both query surfaces (declarative AQL and composable AFL).
"""

import numpy as np

from repro import CellSet, Session


def nightly_batch(night: int, n: int, rng) -> CellSet:
    """One night of telescope observations: sky coordinates + magnitude."""
    coords = np.unique(rng.integers(1, 257, size=(n, 2)), axis=0)
    return CellSet(
        coords,
        {
            "magnitude": rng.uniform(8.0, 22.0, len(coords)),
            "object_id": rng.integers(0, 4000, len(coords)),
        },
    )


def main() -> None:
    rng = np.random.default_rng(99)
    session = Session(n_nodes=4, selectivity_hint=0.2)

    print("=== DDL: declare two survey arrays ===")
    session.execute(
        "CREATE ARRAY Night1<magnitude:float64, object_id:int64>"
        "[ra=1,256,32, dec=1,256,32]"
    )
    session.execute(
        "CREATE ARRAY Night2<magnitude:float64, object_id:int64>"
        "[ra=1,256,32, dec=1,256,32]"
    )
    print("arrays:", session.arrays())

    print("\n=== Incremental loads (two batches per night) ===")
    for name in ("Night1", "Night2"):
        total = 0
        for batch in range(2):
            total += session.load(name, nightly_batch(batch, 3000, rng))
        print(f"{name}: {total} observations over "
              f"{session.array(name).n_chunks} chunks")

    print("\n=== EXPLAIN before running ===")
    query = (
        "SELECT Night1.magnitude - Night2.magnitude AS delta "
        "FROM Night1, Night2 "
        "WHERE Night1.ra = Night2.ra AND Night1.dec = Night2.dec"
    )
    report = session.explain(query, planner="tabu")
    print(report.describe())

    print("\n=== Execute the variability query (AQL) ===")
    result = session.execute(query, planner="tabu")
    delta = result.cells.attrs["delta"]
    print(result.report.describe())
    print(f"positions observed both nights: {len(delta)}; "
          f"largest brightening: {delta.min():+.2f} mag")

    print("\n=== The same filter through AFL ===")
    bright = session.afl("filter(Night1, magnitude < 10)")
    print(f"bright objects on night 1: {bright.n_cells}")
    variable = session.afl(
        "hashJoin(hash(Night1, object_id), hash(Night2, object_id))"
    )
    print(f"object-id matches across nights (A:A join): {variable.n_cells}")

    print("\n=== Cleanup ===")
    session.execute("DROP ARRAY Night1")
    session.execute("DROP ARRAY Night2")
    print("arrays:", session.arrays())


if __name__ == "__main__":
    main()
