#!/usr/bin/env python
"""Planner behaviour across the skew spectrum — Sections 6.2.1/6.2.2.

Sweeps Zipfian skew from uniform (alpha = 0) to extreme (alpha = 2) and
races the physical planners on a distributed merge join, printing the
same plan/align/compare breakdown as the paper's Figures 7 and 8. A
second pass demonstrates the cost model's view of each plan next to the
simulated outcome.
"""

from repro.bench.experiments import MERGE_QUERY, make_cluster
from repro.engine import ShuffleJoinExecutor
from repro.workloads import skewed_merge_pair

PLANNERS = ("baseline", "mbh", "tabu")
ALPHAS = (0.0, 1.0, 2.0)


def main() -> None:
    print(f"query: {MERGE_QUERY}")
    print(f"{'alpha':<7}{'planner':<10}{'plan(s)':>9}{'align(s)':>10}"
          f"{'compare(s)':>12}{'moved':>9}{'model(s)':>10}")
    for alpha in ALPHAS:
        array_a, array_b = skewed_merge_pair(
            alpha, cells_per_array=80_000, seed=11
        )
        for planner in PLANNERS:
            cluster = make_cluster([array_a, array_b], n_nodes=8, seed=11)
            executor = ShuffleJoinExecutor(cluster, selectivity_hint=0.25)
            report = executor.execute(MERGE_QUERY, planner=planner).report
            model = (
                f"{report.analytic_cost.total_seconds:.3f}"
                if report.analytic_cost
                else "-"
            )
            print(
                f"{alpha:<7}{planner:<10}{report.plan_seconds:>9.3f}"
                f"{report.align_seconds:>10.3f}"
                f"{report.compare_seconds:>12.3f}"
                f"{report.cells_moved:>9}{model:>10}"
            )
        print()

    print("Reading the table:")
    print(" - at alpha=0 every planner behaves alike: nothing to exploit;")
    print(" - as skew grows, the baseline keeps shipping big chunks while")
    print("   MBH/Tabu move the sparse counterparts instead (cells moved")
    print("   collapses by an order of magnitude);")
    print(" - the model(s) column is the analytical cost (Equations 4-8)")
    print("   that the cost-based planners minimised — compare it with the")
    print("   simulated align+compare columns.")


if __name__ == "__main__":
    main()
